#include "core/thor_target.hpp"

#include <algorithm>

#include "cpu/state_hash.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace goofi::core {

namespace {

/// Checkpoint payload for the Thor RD stack: the full test-card snapshot
/// plus the host-side per-experiment state the golden run accumulates
/// (iteration count, actuator-CRC accumulator, plant state). Built and
/// consumed in this translation unit only.
struct ThorPayload final : CheckpointPayload {
  testcard::CardSnapshot card;
  int iterations = 0;
  uint32_t crc_state = 0;
  std::vector<double> env_state;

  size_t MemoryBytes() const override {
    return sizeof(ThorPayload) + card.MemoryBytes() +
           env_state.size() * sizeof(double);
  }
};

}  // namespace

ThorRdTarget::ThorRdTarget(CampaignStore* store, testcard::TestCard* card)
    : FaultInjectionAlgorithms(store), card_(card) {}

TargetSystemData ThorRdTarget::DescribeTarget(const testcard::TestCard& card,
                                              const std::string& name) {
  TargetSystemData data;
  data.name = name;
  data.description = "Simulated Thor RD (TRD32) with IEEE 1149.1 scan logic";
  std::string lines;
  for (const scan::ScanChain& chain : card.chains().chains()) {
    for (const scan::ScanCell& cell : chain.cells()) {
      lines += util::Format("%s %s %u %d\n", chain.name().c_str(),
                            cell.name.c_str(), cell.bits, cell.read_only ? 1 : 0);
    }
  }
  data.chain_data = std::move(lines);
  return data;
}

util::Status ThorRdTarget::EnsureWorkload() {
  if (workload_ready_ && workload_.name == campaign_.workload) {
    return util::Status::Ok();
  }
  auto spec = env::GetWorkload(campaign_.workload);
  if (!spec.ok()) return spec.status();
  workload_ = std::move(spec).value();
  auto program = isa::Assemble(workload_.source);
  if (!program.ok()) return program.status();
  program_ = std::move(program).value();

  environment_.reset();
  input_addr_ = output_addr_ = loop_end_addr_ = result_addr_ = 0;
  if (workload_.infinite_loop) {
    if (workload_.environment == "inverted_pendulum") {
      environment_ = std::make_unique<env::InvertedPendulum>();
    } else if (workload_.environment == "cruise_control") {
      environment_ = std::make_unique<env::CruiseControl>();
    } else if (!workload_.environment.empty()) {
      return util::InvalidArgument("unknown environment simulator " +
                                   workload_.environment);
    }
    auto io = program_.Symbol(workload_.input_symbol);
    if (!io.ok()) return io.status();
    input_addr_ = io.value();
    output_addr_ = input_addr_ + workload_.input_words * 4;
    auto loop_end = program_.Symbol(workload_.iteration_symbol);
    if (!loop_end.ok()) return loop_end.status();
    loop_end_addr_ = loop_end.value();
  } else if (!workload_.result_symbol.empty()) {
    auto result = program_.Symbol(workload_.result_symbol);
    if (!result.ok()) return result.status();
    result_addr_ = result.value();
  }
  workload_ready_ = true;
  return util::Status::Ok();
}

util::Status ThorRdTarget::InitTestCard() {
  GOOFI_RETURN_IF_ERROR(card_->Init());
  iterations_ = 0;
  timed_out_ = false;
  injection_done_ = false;
  terminated_before_injection_ = false;
  activations_done_ = 0;
  next_activation_ = 0;
  actuator_crc_.Reset();
  outputs_.clear();
  inject_images_.clear();
  observe_images_.clear();
  prune_active_ = false;
  converged_ = false;
  prune_next_check_ = 0;
  reactivation_armed_ = false;
  memo_pending_ = false;
  memo_blob_.clear();
  return util::Status::Ok();
}

util::Status ThorRdTarget::LoadWorkload() {
  GOOFI_RETURN_IF_ERROR(EnsureWorkload());
  GOOFI_RETURN_IF_ERROR(card_->LoadWorkload(program_));
  if (environment_) environment_->Reset();
  if (golden_image_workload_ != campaign_.workload) {
    // Declare the downloaded image as the shared golden page set, once per
    // workload: every later download of the same image repoints at it
    // (golden adoption) instead of copying, and sibling workers intern the
    // identical image through the factory's registry. Purely a
    // memory-sharing declaration — results are unaffected, and warm paths
    // re-baseline after WriteMemory (EnsureWarmBaseline) as before.
    GOOFI_RETURN_IF_ERROR(card_->MarkMemoryBaseline());
    golden_image_workload_ = campaign_.workload;
  }
  return util::Status::Ok();
}

util::Status ThorRdTarget::WriteMemory() {
  if (environment_ == nullptr) return util::Status::Ok();
  // "the workload and initial input data is downloaded to the system" (§3.3).
  return card_->WriteMemory(input_addr_, environment_->Sense());
}

void ThorRdTarget::ArmTriggers(bool with_injection_breakpoint,
                               bool with_reactivation) {
  card_->ClearTriggers();
  iteration_trigger_ = breakpoint_trigger_ = reactivation_trigger_ = -1;
  prune_trigger_ = -1;
  reactivation_armed_ = with_reactivation;
  if (environment_ != nullptr) {
    scan::Trigger trigger;
    trigger.kind = scan::TriggerKind::kPcBreakpoint;
    trigger.address = loop_end_addr_;
    trigger.occurrence = 1;
    iteration_trigger_ = card_->AddTrigger(trigger);
  }
  if (with_injection_breakpoint && !faults_.empty()) {
    scan::Trigger trigger;
    trigger.kind = scan::TriggerKind::kInstrCount;
    trigger.count = faults_.front().inject_instr;
    breakpoint_trigger_ = card_->AddTrigger(trigger);
  }
  if (with_reactivation) {
    scan::Trigger trigger;
    trigger.kind = scan::TriggerKind::kInstrCount;
    trigger.count = next_activation_;
    reactivation_trigger_ = card_->AddTrigger(trigger);
  }
  // Convergence-boundary stop. Added LAST: DebugUnit reports the first fired
  // trigger index, so when a boundary coincides with an iteration breakpoint
  // or a reactivation, RunLoop services those first and the boundary action
  // runs at the loop top afterwards — the same post-servicing program point
  // the golden trace captured at.
  if (prune_active_ && !converged_) {
    scan::Trigger trigger;
    trigger.kind = scan::TriggerKind::kInstrCount;
    trigger.count = prune_next_check_;
    prune_trigger_ = card_->AddTrigger(trigger);
  }
}

util::Status ThorRdTarget::RunWorkload() {
  GOOFI_RETURN_IF_ERROR(card_->ResetTarget());
  const bool needs_breakpoint =
      campaign_.technique != Technique::kSwifiPreRuntime && !faults_.empty();
  ArmTriggers(needs_breakpoint, false);
  return util::Status::Ok();
}

bool ThorRdTarget::Terminated() const {
  return card_->cpu().halted() || card_->cpu().detected() || timed_out_ ||
         (environment_ != nullptr && iterations_ >= campaign_.max_iterations);
}

util::Status ThorRdTarget::ServiceIteration() {
  auto outputs = card_->ReadMemory(output_addr_, workload_.output_words);
  if (!outputs.ok()) return outputs.status();
  for (uint32_t word : outputs.value()) actuator_crc_.UpdateWord(word);
  const std::vector<uint32_t> inputs = environment_->Exchange(outputs.value());
  GOOFI_RETURN_IF_ERROR(card_->WriteMemory(input_addr_, inputs));
  ++iterations_;
  return util::Status::Ok();
}

util::Status ThorRdTarget::ReactivateFaults() {
  // Group scan faults per chain: one read-modify-write per chain.
  std::map<std::string, util::BitVec> images;
  for (const FaultInstance& fault : faults_) {
    if (!fault.IsScanFault()) continue;
    if (!images.contains(fault.chain)) {
      auto image = card_->ReadScanChain(fault.chain, /*restore=*/false);
      if (!image.ok()) return image.status();
      images.emplace(fault.chain, std::move(image).value());
    }
    util::BitVec& image = images.at(fault.chain);
    if (fault.kind == FaultModelKind::kPermanentStuckAt) {
      image.Set(fault.chain_bit, fault.stuck_value);
    } else {
      image.Flip(fault.chain_bit);
    }
  }
  for (const auto& [chain, image] : images) {
    GOOFI_RETURN_IF_ERROR(card_->WriteScanChain(chain, image));
  }
  // Memory-space faults (runtime SWIFI with non-transient models).
  for (const FaultInstance& fault : faults_) {
    if (fault.IsScanFault()) continue;
    auto word = card_->ReadMemory(fault.address, 1);
    if (!word.ok()) return word.status();
    uint32_t value = word.value()[0];
    if (fault.kind == FaultModelKind::kPermanentStuckAt) {
      if (fault.stuck_value) {
        value |= (1u << fault.bit);
      } else {
        value &= ~(1u << fault.bit);
      }
    } else {
      value ^= (1u << fault.bit);
    }
    GOOFI_RETURN_IF_ERROR(card_->WriteMemory(fault.address, {value}));
  }
  ++activations_done_;
  return util::Status::Ok();
}

util::Status ThorRdTarget::RunLoop(bool stop_at_breakpoint) {
  for (;;) {
    if (Terminated()) return util::Status::Ok();
    // Convergence boundary: this check runs at the loop top, i.e. after any
    // iteration servicing or fault reactivation that stopped the run at the
    // same retirement count — the exact program point the golden trace
    // captured at. The re-arm is unconditional: it drops the fired (level-
    // comparing) boundary trigger and installs one for the next boundary
    // while preserving the iteration and reactivation triggers.
    if (prune_active_ && !converged_ &&
        card_->cpu().instructions_retired() >= prune_next_check_) {
      GOOFI_RETURN_IF_ERROR(AtBoundary());
      if (converged_) return util::Status::Ok();
      ArmTriggers(/*with_injection_breakpoint=*/false, reactivation_armed_);
    }
    const scan::DebugRunResult result = card_->Run(campaign_.timeout_cycles);
    if (result.outcome != cpu::StepOutcome::kOk) {
      return util::Status::Ok();  // halted or detected
    }
    if (result.timed_out) {
      timed_out_ = true;
      return util::Status::Ok();
    }
    if (result.fired_trigger == iteration_trigger_ && iteration_trigger_ >= 0) {
      GOOFI_RETURN_IF_ERROR(ServiceIteration());
      if (iterations_ >= campaign_.max_iterations) return util::Status::Ok();
      continue;
    }
    if (stop_at_breakpoint && result.fired_trigger == breakpoint_trigger_ &&
        breakpoint_trigger_ >= 0) {
      return util::Status::Ok();
    }
    if (result.fired_trigger == reactivation_trigger_ &&
        reactivation_trigger_ >= 0) {
      const bool more =
          campaign_.fault_model == FaultModelKind::kPermanentStuckAt ||
          activations_done_ < campaign_.burst_length;
      if (more) {
        GOOFI_RETURN_IF_ERROR(ReactivateFaults());
      }
      next_activation_ = card_->cpu().instructions_retired() +
                         std::max<uint64_t>(1, campaign_.burst_spacing);
      const bool keep_reactivating =
          campaign_.fault_model == FaultModelKind::kPermanentStuckAt ||
          activations_done_ < campaign_.burst_length;
      ArmTriggers(false, keep_reactivating);
      continue;
    }
    // A trigger fired that this phase does not care about (e.g. the
    // breakpoint trigger after injection); ignore and resume.
  }
}

util::Status ThorRdTarget::RunLoopDetail() {
  // Detail mode (§3.3): "the system state is logged as frequently as the
  // target system allows, typically after the execution of each machine
  // instruction".
  while (!Terminated() && detail_log_.size() < kMaxDetailRows) {
    // Convergence boundary, post-step and post-servicing like RunLoop's
    // loop-top check (row instret values are post-step, so the state here is
    // the state after retiring exactly prune_next_check_ instructions). No
    // triggers to re-arm on this path: single-stepping checks every
    // retirement, so the boundary hits exactly.
    if (prune_active_ && !converged_ &&
        card_->cpu().instructions_retired() >= prune_next_check_) {
      GOOFI_RETURN_IF_ERROR(AtBoundary());
      if (converged_) return util::Status::Ok();
    }
    const uint32_t exec_pc = card_->cpu().pc();
    const cpu::StepOutcome outcome = card_->SingleStep();
    if (environment_ != nullptr && exec_pc == loop_end_addr_) {
      GOOFI_RETURN_IF_ERROR(ServiceIteration());
    }
    if (card_->cpu().cycles() >= campaign_.timeout_cycles) timed_out_ = true;

    LoggedState snapshot;
    snapshot.cycles = card_->cpu().cycles();
    snapshot.instret = card_->cpu().instructions_retired();
    snapshot.iterations = iterations_;
    snapshot.halted = outcome == cpu::StepOutcome::kHalted;
    snapshot.detected = outcome == cpu::StepOutcome::kDetected;
    if (snapshot.detected) {
      snapshot.edm = cpu::EdmTypeName(card_->cpu().edm_event().type);
      snapshot.edm_code = card_->cpu().edm_event().code;
    }
    // Log the same chains the campaign observes at termination, so detail
    // traces expose fault propagation in every selected location class.
    // The capture buffer is reused across instructions: this loop runs per
    // retired instruction, so a fresh BitVec per read would dominate the
    // detail-mode allocation profile.
    for (const std::string& chain : campaign_.observe_chains) {
      GOOFI_RETURN_IF_ERROR(
          card_->ReadScanChainInto(chain, /*restore=*/true, &detail_capture_));
      snapshot.scan_images[chain] = detail_capture_.ToString();
    }
    detail_log_.push_back(std::move(snapshot));

    if (outcome != cpu::StepOutcome::kOk) break;
  }
  return util::Status::Ok();
}

util::Status ThorRdTarget::EnsureWarmBaseline() {
  if (warm_ready_workload_ == campaign_.workload) return util::Status::Ok();
  // The deterministic cold prologue every experiment shares. Running it once
  // per worker makes each worker's baseline image identical to the one the
  // cache's deltas were captured against.
  GOOFI_RETURN_IF_ERROR(InitTestCard());
  GOOFI_RETURN_IF_ERROR(LoadWorkload());
  GOOFI_RETURN_IF_ERROR(WriteMemory());
  GOOFI_RETURN_IF_ERROR(card_->MarkMemoryBaseline());
  warm_ready_workload_ = campaign_.workload;
  return util::Status::Ok();
}

util::Status ThorRdTarget::CaptureCheckpoint(CheckpointCache* cache) {
  auto card = card_->SaveSnapshot();
  if (!card.ok()) return card.status();
  auto payload = std::make_shared<ThorPayload>();
  payload->card = std::move(card).value();
  payload->iterations = iterations_;
  payload->crc_state = actuator_crc_.raw_state();
  if (environment_ != nullptr) payload->env_state = environment_->SaveState();
  Checkpoint checkpoint;
  checkpoint.instret = card_->cpu().instructions_retired();
  checkpoint.payload = std::move(payload);
  cache->Add(std::move(checkpoint));
  return util::Status::Ok();
}

util::Status ThorRdTarget::BuildGoldenRun(uint64_t interval,
                                          CheckpointCache* cache,
                                          GoldenTrace* trace) {
  if (interval == 0 || (cache == nullptr && trace == nullptr)) {
    return util::InvalidArgument("checkpoint interval must be positive");
  }
  if (cache != nullptr) {
    GOOFI_RETURN_IF_ERROR(BuildCheckpointPass(interval, cache));
  }
  if (trace != nullptr) {
    GOOFI_RETURN_IF_ERROR(BuildTracePass(interval, trace));
  }
  return util::Status::Ok();
}

util::Status ThorRdTarget::BuildCheckpointPass(uint64_t interval,
                                               CheckpointCache* cache) {
  // Golden run: the fault-free workload, stepped with exactly the semantics
  // of RunLoop (service an iteration only when the step at the loop boundary
  // completed normally; trigger servicing outranks the cycle timeout). The
  // state at instret N here is bit-for-bit the state a cold experiment
  // passes through at instret N on its way to the injection breakpoint.
  faults_.clear();
  warm_ready_workload_.clear();
  GOOFI_RETURN_IF_ERROR(EnsureWarmBaseline());
  GOOFI_RETURN_IF_ERROR(card_->ResetTarget());
  uint64_t next_capture = 0;
  if (card_->use_fast_run()) {
    // Fast-forward through the predecoded superblock path. The reference
    // loop's exit tests compile directly into a RunFastRequest: the capture
    // threshold is an instret budget (level-compared, exactly like the
    // pre-step check below), the campaign timeout a cycle budget (0 means
    // unbounded here, matching the `timeout_cycles != 0` guard), and the
    // iteration boundary a pc watch, so ServiceIteration runs after exactly
    // the retirements single-stepping would service.
    cpu::Cpu& cpu = card_->mutable_cpu();
    for (;;) {
      if (Terminated()) break;
      if (cpu.instructions_retired() >= next_capture) {
        GOOFI_RETURN_IF_ERROR(CaptureCheckpoint(cache));
        next_capture = cpu.instructions_retired() + interval;
        if (next_capture >= campaign_.inject_max_instr) break;
      }
      cpu::RunFastRequest request;
      request.max_instret = next_capture;
      request.max_cycles = campaign_.timeout_cycles;
      if (environment_ != nullptr) {
        request.watch_pc = loop_end_addr_;
        request.watch_pc_enabled = true;
      }
      const cpu::RunFastResult fast = cpu.RunFastEx(request);
      // Same branch order as the stepped loop: the boundary's own outcome
      // check, then service, then the generic outcome and timeout tests.
      if (environment_ != nullptr && fast.exec_pc == loop_end_addr_) {
        if (fast.outcome != cpu::StepOutcome::kOk) break;
        GOOFI_RETURN_IF_ERROR(ServiceIteration());
        if (iterations_ >= campaign_.max_iterations) break;
        continue;
      }
      if (fast.outcome != cpu::StepOutcome::kOk) break;
      if (campaign_.timeout_cycles != 0 &&
          cpu.cycles() >= campaign_.timeout_cycles) {
        break;
      }
    }
    return util::Status::Ok();
  }
  for (;;) {
    if (Terminated()) break;
    if (card_->cpu().instructions_retired() >= next_capture) {
      GOOFI_RETURN_IF_ERROR(CaptureCheckpoint(cache));
      next_capture = card_->cpu().instructions_retired() + interval;
      // No experiment can use a checkpoint at or past inject_max_instr
      // (FindBefore is strict), so stop the golden run there.
      if (next_capture >= campaign_.inject_max_instr) break;
    }
    const uint32_t exec_pc = card_->cpu().pc();
    const cpu::StepOutcome outcome = card_->SingleStep();
    if (environment_ != nullptr && exec_pc == loop_end_addr_) {
      if (outcome != cpu::StepOutcome::kOk) break;
      GOOFI_RETURN_IF_ERROR(ServiceIteration());
      if (iterations_ >= campaign_.max_iterations) break;
      continue;
    }
    if (outcome != cpu::StepOutcome::kOk) break;
    if (campaign_.timeout_cycles != 0 &&
        card_->cpu().cycles() >= campaign_.timeout_cycles) {
      break;  // the golden run hit the campaign timeout; checkpoints end here
    }
  }
  return util::Status::Ok();
}

util::Status ThorRdTarget::BuildTracePass(uint64_t interval,
                                          GoldenTrace* trace) {
  trace->set_interval(interval);
  trace->set_campaign_name(campaign_.name);
  // A card without state-hash support leaves the trace without a final
  // state, which CanPruneExperiment treats as "pruning unavailable".
  if (!card_->SupportsStateHash()) return util::Status::Ok();
  // Drive the fault-free workload through the *experiment* run loops with
  // boundary capture active. Reusing RunLoop/RunLoopDetail (rather than a
  // bespoke golden loop) guarantees that boundary program points, the
  // branch-order corner cases around iteration servicing, and the final
  // outcome (including timed_out) are exactly what a converging faulty run
  // reaches.
  faults_.clear();
  warm_ready_workload_.clear();
  GOOFI_RETURN_IF_ERROR(EnsureWarmBaseline());
  GOOFI_RETURN_IF_ERROR(card_->ResetTarget());
  detail_log_.clear();
  capture_trace_ = trace;
  prune_active_ = true;
  converged_ = false;
  prune_next_check_ = 0;  // first capture at instret 0, then every interval
  ArmTriggers(/*with_injection_breakpoint=*/false, /*with_reactivation=*/false);
  const util::Status run = campaign_.log_mode == LogMode::kDetail
                               ? RunLoopDetail()
                               : RunLoop(/*stop_at_breakpoint=*/false);
  capture_trace_ = nullptr;
  prune_active_ = false;
  GOOFI_RETURN_IF_ERROR(run);
  // The standard experiment epilogue, so the golden final state is row-
  // identical to what a full fault-free experiment would log.
  GOOFI_RETURN_IF_ERROR(ReadMemory());
  GOOFI_RETURN_IF_ERROR(ReadScanChain());
  auto state = CollectState();
  if (!state.ok()) return state.status();
  trace->SetFinalState(std::move(state).value());
  if (campaign_.log_mode == LogMode::kDetail) {
    // A golden run truncated by the row cap has no usable suffix: a faulty
    // run converging late would need rows the trace never recorded.
    trace->set_detail_complete(
        !(detail_log_.size() >= kMaxDetailRows && !Terminated()));
    *trace->mutable_detail_rows() = std::move(detail_log_);
    detail_log_.clear();
  }
  return util::Status::Ok();
}

util::Status ThorRdTarget::HashTargetNow(cpu::StateHasher* hasher) {
  GOOFI_RETURN_IF_ERROR(card_->HashTargetState(hasher));
  // Host-side per-experiment accumulators that shape the remaining run and
  // the logged outcome: actuator-CRC state, iteration count, plant state.
  hasher->U32(actuator_crc_.raw_state());
  hasher->I32(iterations_);
  if (environment_ != nullptr) {
    environment_->SaveStateInto(&env_state_scratch_);
    hasher->U64(env_state_scratch_.size());
    for (double value : env_state_scratch_) hasher->Double(value);
  }
  return util::Status::Ok();
}

bool ThorRdTarget::CanPruneExperiment() const {
  if (!convergence_pruning_ || golden_trace_ == nullptr) return false;
  const GoldenTrace& trace = *golden_trace_;
  if (trace.interval() == 0 || !trace.has_final_state()) return false;
  if (trace.campaign_name() != campaign_.name) return false;
  if (faults_.empty() || !injection_done_ || terminated_before_injection_) {
    return false;
  }
  // Permanent faults re-activate forever: the target can never rejoin the
  // golden trajectory while the stuck-at keeps being re-applied.
  if (campaign_.fault_model == FaultModelKind::kPermanentStuckAt) return false;
  if (!card_->SupportsStateHash()) return false;
  // Canonical memory hashing digests against the workload's baseline; no
  // baseline for this workload means no comparable hash.
  if (warm_ready_workload_ != campaign_.workload) return false;
  // Detail mode additionally needs the golden suffix rows to synthesize.
  if (campaign_.log_mode == LogMode::kDetail &&
      (!trace.detail_complete() || trace.detail_rows().empty())) {
    return false;
  }
  return true;
}

util::Status ThorRdTarget::AtBoundary() {
  const uint64_t instret = card_->cpu().instructions_retired();
  if (capture_trace_ != nullptr) {
    // Golden trace pass: record the digest (and its capture blob, the
    // collision guard) at this boundary.
    cpu::StateHasher hasher(/*capture=*/true);
    GOOFI_RETURN_IF_ERROR(HashTargetNow(&hasher));
    GoldenBoundary boundary;
    boundary.instret = instret;
    boundary.hash = hasher.hash();
    boundary.blob = hasher.TakeBlob();
    capture_trace_->AddBoundary(std::move(boundary));
    prune_next_check_ =
        (instret / capture_trace_->interval() + 1) * capture_trace_->interval();
    return util::Status::Ok();
  }
  const uint64_t interval = golden_trace_->interval();
  const uint64_t next = (instret / interval + 1) * interval;
  if (instret != prune_next_check_) {
    // Overshot the boundary (instruction-count stops are exact, so this
    // should not happen); skip rather than compare at a non-boundary point.
    prune_next_check_ = next;
    return util::Status::Ok();
  }
  prune_next_check_ = next;
  // An intermittent burst still in flight keeps future behavior dependent on
  // host-side reactivation state the hash does not cover; compare only once
  // the burst has fully fired.
  if (campaign_.fault_model == FaultModelKind::kIntermittentBitFlip &&
      activations_done_ < campaign_.burst_length) {
    return util::Status::Ok();
  }
  const GoldenBoundary* golden = golden_trace_->FindBoundary(instret);
  if (golden == nullptr) {
    // The golden run terminated before this point; no later boundary can
    // match either.
    prune_active_ = false;
    return util::Status::Ok();
  }
  ++prune_stats_.boundary_checks;
  cpu::StateHasher hasher(/*capture=*/true);
  GOOFI_RETURN_IF_ERROR(HashTargetNow(&hasher));
  if (hasher.hash() == golden->hash) {
    if (hasher.blob() == golden->blob) {
      if (campaign_.log_mode == LogMode::kDetail) {
        // Synthesize the remaining detail rows from the golden suffix
        // (rows past this boundary; row instret values increase strictly).
        const std::vector<LoggedState>& rows = golden_trace_->detail_rows();
        const auto suffix_begin = std::upper_bound(
            rows.begin(), rows.end(), instret,
            [](uint64_t value, const LoggedState& row) {
              return value < row.instret;
            });
        const size_t suffix = static_cast<size_t>(rows.end() - suffix_begin);
        if (detail_log_.size() + suffix > kMaxDetailRows) {
          // A full run would hit the row cap mid-suffix and stop with that
          // row's state; synthesizing that is not worth the complexity, and
          // the overflow persists at every later boundary — give up.
          prune_active_ = false;
          return util::Status::Ok();
        }
        detail_log_.insert(detail_log_.end(), suffix_begin, rows.end());
      }
      synth_state_ = golden_trace_->final_state();
      converged_ = true;
      ++prune_stats_.pruned_golden;
      return util::Status::Ok();
    }
    ++prune_stats_.collision_rejects;
  }
  // Divergent state: try the cross-experiment memo (normal mode only —
  // detail rows are not memoized), and remember the first such boundary as
  // this experiment's memo candidate.
  if (campaign_.log_mode != LogMode::kNormal) return util::Status::Ok();
  if (convergence_memo_ != nullptr &&
      convergence_memo_->Lookup(instret, hasher.hash(), hasher.blob(),
                                &synth_state_)) {
    converged_ = true;
    ++prune_stats_.pruned_memo;
    return util::Status::Ok();
  }
  if (!memo_pending_) {
    memo_pending_ = true;
    memo_instret_ = instret;
    memo_hash_ = hasher.hash();
    memo_blob_ = hasher.TakeBlob();
  }
  return util::Status::Ok();
}

util::Status ThorRdTarget::RestoreCheckpoint(const Checkpoint& checkpoint) {
  const auto* payload =
      dynamic_cast<const ThorPayload*>(checkpoint.payload.get());
  if (payload == nullptr) {
    return util::Internal("checkpoint payload is not a Thor RD snapshot");
  }
  GOOFI_RETURN_IF_ERROR(EnsureWarmBaseline());
  GOOFI_RETURN_IF_ERROR(card_->RestoreSnapshot(payload->card));
  // Per-experiment bookkeeping exactly as a cold run carries it to this
  // instruction: injection still ahead, no timeout, accumulated iteration
  // count / CRC / plant state from the fault-free prefix.
  iterations_ = payload->iterations;
  timed_out_ = false;
  injection_done_ = false;
  terminated_before_injection_ = false;
  activations_done_ = 0;
  next_activation_ = 0;
  actuator_crc_.set_raw_state(payload->crc_state);
  outputs_.clear();
  inject_images_.clear();
  observe_images_.clear();
  prune_active_ = false;
  converged_ = false;
  prune_next_check_ = 0;
  memo_pending_ = false;
  memo_blob_.clear();
  if (environment_ != nullptr) environment_->RestoreState(payload->env_state);
  // Re-arm as RunWorkload would. The PC breakpoint fires on every execution
  // of the loop boundary regardless of its occurrence counter (occurrence
  // 1), and instruction-count triggers are level-comparators, so fresh
  // counters behave identically to counters carried from instruction 0.
  ArmTriggers(/*with_injection_breakpoint=*/!faults_.empty(),
              /*with_reactivation=*/false);
  return util::Status::Ok();
}

util::Status ThorRdTarget::WaitForBreakpoint() {
  GOOFI_RETURN_IF_ERROR(RunLoop(/*stop_at_breakpoint=*/true));
  if (Terminated()) terminated_before_injection_ = true;
  return util::Status::Ok();
}

util::Status ThorRdTarget::ReadScanChain() {
  // A converged run takes its observation images from the synthesized state.
  if (converged_) return util::Status::Ok();
  const bool injection_read = !faults_.empty() && !injection_done_ &&
                              !terminated_before_injection_ &&
                              campaign_.technique == Technique::kScifi;
  if (injection_read) {
    inject_images_.clear();
    for (const FaultInstance& fault : faults_) {
      if (!fault.IsScanFault() || inject_images_.contains(fault.chain)) continue;
      auto image = card_->ReadScanChain(fault.chain, /*restore=*/false);
      if (!image.ok()) return image.status();
      inject_images_.emplace(fault.chain, std::move(image).value());
    }
    return util::Status::Ok();
  }
  // Observation read at experiment end (§3.3: the logged system state
  // includes all observable locations selected in the set-up phase).
  observe_images_.clear();
  for (const std::string& chain : campaign_.observe_chains) {
    auto image = card_->ReadScanChain(chain, /*restore=*/true);
    if (!image.ok()) return image.status();
    observe_images_[chain] = image.value().ToString();
  }
  return util::Status::Ok();
}

util::Status ThorRdTarget::InjectFault() {
  if (terminated_before_injection_) return util::Status::Ok();
  for (const FaultInstance& fault : faults_) {
    if (!fault.IsScanFault()) continue;
    auto it = inject_images_.find(fault.chain);
    if (it == inject_images_.end()) {
      return util::Internal("InjectFault before ReadScanChain for chain " +
                            fault.chain);
    }
    if (fault.kind == FaultModelKind::kPermanentStuckAt) {
      it->second.Set(fault.chain_bit, fault.stuck_value);
    } else {
      it->second.Flip(fault.chain_bit);
    }
  }
  return util::Status::Ok();
}

util::Status ThorRdTarget::WriteScanChain() {
  if (terminated_before_injection_) return util::Status::Ok();
  for (const auto& [chain, image] : inject_images_) {
    GOOFI_RETURN_IF_ERROR(card_->WriteScanChain(chain, image));
  }
  if (!faults_.empty()) {
    injection_done_ = true;
    ++activations_done_;
  }
  return util::Status::Ok();
}

util::Status ThorRdTarget::WaitForTermination() {
  const bool reactivate =
      injection_done_ &&
      campaign_.fault_model != FaultModelKind::kTransientBitFlip;
  if (reactivate) {
    next_activation_ = card_->cpu().instructions_retired() +
                       std::max<uint64_t>(1, campaign_.burst_spacing);
  }
  converged_ = false;
  memo_pending_ = false;
  prune_active_ = false;
  if (CanPruneExperiment()) {
    // First boundary strictly after the injection point: a faulty run can
    // only have rejoined the golden trajectory after the fault landed.
    const uint64_t interval = golden_trace_->interval();
    prune_next_check_ =
        (card_->cpu().instructions_retired() / interval + 1) * interval;
    prune_active_ = true;
  }
  ArmTriggers(false, reactivate);
  if (campaign_.log_mode == LogMode::kDetail) {
    return RunLoopDetail();
  }
  return RunLoop(/*stop_at_breakpoint=*/false);
}

util::Status ThorRdTarget::ReadMemory() {
  // A converged run takes its outputs from the synthesized state.
  if (converged_) return util::Status::Ok();
  if (environment_ != nullptr) {
    // Control workloads: the trace of actuator commands is the output.
    outputs_ = {actuator_crc_.Value()};
    return util::Status::Ok();
  }
  if (workload_.result_words == 0) {
    outputs_.clear();
    return util::Status::Ok();
  }
  auto words = card_->ReadMemory(result_addr_, workload_.result_words);
  if (!words.ok()) return words.status();
  outputs_ = std::move(words).value();
  return util::Status::Ok();
}

util::Status ThorRdTarget::MutateImage() {
  // Pre-runtime SWIFI: corrupt the downloaded program/data image before the
  // workload starts executing (§1).
  for (const FaultInstance& fault : faults_) {
    if (fault.IsScanFault()) {
      return util::InvalidArgument(
          "pre-runtime SWIFI campaign selected a scan-chain location; use "
          "memory.text / memory.data selectors");
    }
    auto word = card_->ReadMemory(fault.address, 1);
    if (!word.ok()) return word.status();
    uint32_t value = word.value()[0];
    if (fault.kind == FaultModelKind::kPermanentStuckAt) {
      if (fault.stuck_value) {
        value |= (1u << fault.bit);
      } else {
        value &= ~(1u << fault.bit);
      }
    } else {
      value ^= (1u << fault.bit);
    }
    GOOFI_RETURN_IF_ERROR(card_->WriteMemory(fault.address, {value}));
  }
  injection_done_ = true;
  ++activations_done_;
  return util::Status::Ok();
}

util::Status ThorRdTarget::InjectMemoryFault() {
  if (terminated_before_injection_) return util::Status::Ok();
  return MutateImage();
}

util::Result<std::vector<FaultCandidate>> ThorRdTarget::EnumerateFaultSpace(
    const FaultLocationSelector& selector) {
  GOOFI_RETURN_IF_ERROR(EnsureWorkload());
  std::vector<FaultCandidate> out;

  if (selector.chain == "memory.text" || selector.chain == "memory.data") {
    uint32_t begin = program_.base_address;
    uint32_t end = program_.base_address + program_.size_bytes();
    const auto etext = program_.symbols.find("_etext");
    if (etext != program_.symbols.end()) {
      if (selector.chain == "memory.text") {
        end = etext->second;
      } else {
        begin = etext->second;
      }
    } else if (selector.chain == "memory.data") {
      return util::InvalidArgument(
          "workload has no _etext marker; memory.data is empty");
    }
    std::vector<std::pair<uint32_t, uint32_t>> ranges;
    if (end > begin) ranges.emplace_back(begin, end);
    // Control workloads keep their working data in the environment I/O
    // buffer rather than the image; that buffer is part of the "data area"
    // the paper's pre-runtime SWIFI targets.
    if (selector.chain == "memory.data" && workload_.infinite_loop) {
      const uint32_t io_end =
          input_addr_ + (workload_.input_words + workload_.output_words) * 4;
      ranges.emplace_back(input_addr_, io_end);
    }
    if (ranges.empty()) {
      return util::InvalidArgument("selector matches no words: " +
                                   selector.ToString());
    }
    for (const auto& [range_begin, range_end] : ranges) {
      for (uint32_t address = range_begin; address < range_end; address += 4) {
        for (uint32_t bit = 0; bit < 32; ++bit) {
          FaultCandidate candidate;
          candidate.scan = false;
          candidate.address = address;
          candidate.bit = bit;
          candidate.cell_name =
              util::Format("%s@0x%08x", selector.chain.c_str(), address);
          out.push_back(std::move(candidate));
        }
      }
    }
    return out;
  }

  const scan::ScanChain* chain = card_->chains().Find(selector.chain);
  if (chain == nullptr) {
    return util::NotFound("no scan chain or memory space named " +
                          selector.chain);
  }
  for (const scan::ScanCell& cell : chain->cells()) {
    if (cell.read_only) continue;
    if (!selector.cell_prefix.empty() &&
        !util::StartsWith(cell.name, selector.cell_prefix)) {
      continue;
    }
    for (uint32_t bit = 0; bit < cell.bits; ++bit) {
      FaultCandidate candidate;
      candidate.scan = true;
      candidate.chain = selector.chain;
      candidate.chain_bit = cell.offset + bit;
      candidate.cell_name = cell.name;
      out.push_back(std::move(candidate));
    }
  }
  if (out.empty()) {
    return util::InvalidArgument("selector " + selector.ToString() +
                                 " matches no injectable bits");
  }
  return out;
}

util::Result<LoggedState> ThorRdTarget::CollectState() {
  LoggedState state;
  if (converged_) {
    state = synth_state_;
  } else {
    const cpu::Cpu& cpu = card_->cpu();
    state.detected = cpu.detected();
    state.halted = cpu.halted() && !cpu.detected();
    if (state.detected) {
      state.edm = cpu::EdmTypeName(cpu.edm_event().type);
      state.edm_code = cpu.edm_event().code;
    }
    state.timed_out = timed_out_;
    state.env_failed = environment_ != nullptr && environment_->Failed();
    state.cycles = cpu.cycles();
    state.instret = cpu.instructions_retired();
    state.iterations = iterations_;
    state.outputs = outputs_;
    state.scan_images = observe_images_;
  }
  // The experiment's final state is the deterministic outcome of the first
  // divergent boundary state recorded in AtBoundary — memoize it, whether
  // this run later converged (via golden or memo) or simulated to the end.
  if (memo_pending_) {
    if (convergence_memo_ != nullptr &&
        campaign_.log_mode == LogMode::kNormal &&
        convergence_memo_->Insert(memo_instret_, memo_hash_,
                                  std::move(memo_blob_), state)) {
      ++prune_stats_.memo_inserts;
    }
    memo_pending_ = false;
    memo_blob_.clear();
  }
  return state;
}

}  // namespace goofi::core
