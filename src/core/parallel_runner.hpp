// ParallelCampaignRunner: shards a campaign's experiments across worker
// threads, each owning a private simulated target stack, with deterministic
// replay — the database contents of a parallel run are byte-identical to a
// serial FaultInjectionAlgorithms::RunCampaign of the same campaign.
//
// Why this is safe: every experiment already derives its RNG stream from
// (campaign seed, experiment index) alone (core/algorithms.cpp), and every
// experiment body starts by re-initializing the test card and re-downloading
// the workload, so experiments are independent of execution order and of the
// target instance they run on. The runner exploits exactly that:
//
//   - N workers, each with its own target built by a TargetFactory (TRD32
//     CPU + scan logic + test card + TargetSystemInterface) — no simulator
//     state is shared between threads;
//   - a shared atomic cursor hands out pending experiment indices;
//   - results flow to a single committer (the thread that called Run),
//     which commits them to CampaignStore strictly in experiment order and
//     in batches (CampaignStore::PutExperiments), and invokes the
//     ProgressMonitor in order — monitors need no thread-safety;
//   - resume semantics match the serial driver: experiments already logged
//     are skipped before dispatch;
//   - early stop (monitor returns false) cancels outstanding shards; the
//     speculative results of later experiments are discarded, so the
//     database again matches a serially-stopped run.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/algorithms.hpp"
#include "core/equivalence.hpp"
#include "cpu/cpu.hpp"

namespace goofi::core {

class ParallelCampaignRunner {
 public:
  /// Builds one worker's private target stack. Called once per worker on the
  /// committer thread; the produced target is driven by exactly one worker.
  using TargetFactory =
      std::function<std::unique_ptr<FaultInjectionAlgorithms>()>;

  /// `num_workers` <= 0 selects ThreadPool::DefaultWorkers(). The worker
  /// count is additionally capped by the number of pending experiments.
  ParallelCampaignRunner(CampaignStore* store, TargetFactory factory,
                         int num_workers = 0);

  /// Progress callbacks arrive on the committer thread, strictly in
  /// experiment order (the Fig. 7 progress window semantics, including
  /// ending the campaign early by returning false).
  void SetProgressMonitor(ProgressMonitor* monitor) { monitor_ = monitor; }

  /// Applied to every worker target. The filter is shared across threads and
  /// must therefore be safe to call concurrently (LivenessAnalyzer filters
  /// are: they only read the immutable trace).
  void SetLivenessFilter(FaultInjectionAlgorithms::LivenessFilter filter) {
    liveness_filter_ = std::move(filter);
  }

  /// Number of database rows buffered before a batched commit. Commit order
  /// is unaffected; this only trades commit overhead against buffering.
  void SetCommitBatchRows(int rows);

  /// Checkpoint fast-forward: when the target supports it, the committer
  /// thread builds one golden-run CheckpointCache during preparation and
  /// shares it read-only across all workers, so each experiment warm-starts
  /// from the nearest snapshot before its injection time. 0 disables.
  void SetCheckpointInterval(uint64_t interval) {
    checkpoint_interval_ = interval;
  }
  uint64_t checkpoint_interval() const { return checkpoint_interval_; }

  /// Engages warm-start even when some faults may inject before the first
  /// checkpoint (see FaultInjectionAlgorithms::SetForceWarmStart).
  void SetForceWarmStart(bool force) { force_warm_start_ = force; }

  /// Experiments of the most recent Run that started from a checkpoint,
  /// summed over all workers. Outside stats() so warm and cold runs compare
  /// equal.
  int warm_starts() const { return warm_starts_; }

  /// Golden-trace convergence pruning: when enabled (and the target supports
  /// checkpoints), the committer thread records one GoldenTrace during
  /// preparation and shares it read-only across all workers, together with a
  /// shared cross-experiment ConvergenceMemo. Experiments whose
  /// post-injection state rejoins the golden trajectory terminate at the
  /// matching boundary with their remaining rows synthesized — byte-identical
  /// to a full run.
  void SetConvergencePruning(bool enabled) { convergence_pruning_ = enabled; }
  bool convergence_pruning() const { return convergence_pruning_; }

  /// Convergence counters of the most recent Run, summed over all workers
  /// (like warm_starts(), outside stats() so pruned and unpruned runs
  /// compare equal).
  const ConvergenceStats& prune_stats() const { return prune_stats_; }

  /// Fault-list equivalence classing (core/equivalence): when enabled, the
  /// committer thread plans every pending experiment's fault list up front,
  /// partitions the experiments into provably-equivalent classes, dispatches
  /// one representative per class to the workers and synthesizes the
  /// remaining members' rows at commit time. Commit order is unchanged, so
  /// the database stays byte-identical to the undeduplicated run. Eligibility
  /// mirrors pruning: transient single-flip experiments only; everything
  /// else stays a singleton class and runs normally.
  void SetEquivalenceClassing(bool enabled) { equivalence_classing_ = enabled; }
  bool equivalence_classing() const { return equivalence_classing_; }

  /// Access timeline for window-based classes, shared read-only across the
  /// run. Optional: without it only past-end and pre-runtime-SWIFI classes
  /// form.
  void SetEquivalenceTimeline(
      std::shared_ptr<const LivenessAnalyzer> timeline) {
    equivalence_timeline_ = std::move(timeline);
  }

  /// Static workload analysis (core/static_analysis) for the no-effect
  /// classes — flips into statically never-accessed registers or never-read
  /// memory words. Optional and independent of the timeline: `run-static`
  /// passes only this, skipping the golden pre-run entirely. Shared
  /// read-only across the run.
  void SetStaticAnalysis(std::shared_ptr<const StaticAnalysis> analysis) {
    equivalence_static_ = std::move(analysis);
  }

  /// Spot-check sampling: every n-th multi-member class re-executes one
  /// synthesized member on the committer's private target after the commit
  /// loop and verifies StateHasher blob equality of the full row set — the
  /// collision/logic backstop. A mismatch fails the Run. 0 disables.
  void SetSpotCheckEvery(int every) { spot_check_every_ = every; }

  /// Dedup counters of the most recent Run (outside stats(), like
  /// warm_starts(): deduped and plain runs must compare equal on Stats).
  const EquivalenceStats& dedup_stats() const { return dedup_stats_; }

  /// Copy-on-write memory residency/counters of the most recent Run,
  /// aggregated over all worker targets at the end of the run. Each distinct
  /// golden image is counted once — with factory-installed registries all
  /// workers of a campaign share one physical workload image.
  const cpu::MemoryUsageAggregator::Totals& memory_usage() const {
    return memory_usage_;
  }

  /// Runs `campaign_name` to completion (technique dispatched from the
  /// stored campaign, as in RunCampaign). On a worker error, experiments
  /// committed so far stay in the database — exactly what a failed serial
  /// run leaves behind — and the first error is returned.
  util::Status Run(const std::string& campaign_name);

  /// Aggregated over all workers, counting only committed experiments, so a
  /// run's Stats equal the serial driver's.
  const FaultInjectionAlgorithms::Stats& stats() const { return stats_; }

  /// The configured worker count (the ceiling; a Run spawns at most one
  /// worker per pending experiment).
  int num_workers() const { return num_workers_; }

  /// Workers the most recent Run actually spawned; 0 before any Run.
  int workers_used() const { return workers_used_; }

 private:
  /// The dedup dispatch path: one work unit per equivalence class, member
  /// rows synthesized in commit order. `targets` holds one extra target (the
  /// committer's own) past the worker-owned ones.
  util::Status RunDeduped(
      const CampaignData& campaign, const std::vector<int>& pending,
      std::vector<std::unique_ptr<FaultInjectionAlgorithms>>& targets,
      const LoggedState& reference_state);

  CampaignStore* store_;
  TargetFactory factory_;
  int num_workers_;
  int workers_used_ = 0;
  int batch_rows_ = 64;
  uint64_t checkpoint_interval_ =
      FaultInjectionAlgorithms::kDefaultCheckpointInterval;
  bool force_warm_start_ = false;
  int warm_starts_ = 0;
  bool convergence_pruning_ = false;
  ConvergenceStats prune_stats_;
  bool equivalence_classing_ = false;
  std::shared_ptr<const LivenessAnalyzer> equivalence_timeline_;
  std::shared_ptr<const StaticAnalysis> equivalence_static_;
  int spot_check_every_ = 4;
  EquivalenceStats dedup_stats_;
  cpu::MemoryUsageAggregator::Totals memory_usage_;
  ProgressMonitor* monitor_ = nullptr;
  FaultInjectionAlgorithms::LivenessFilter liveness_filter_;
  FaultInjectionAlgorithms::Stats stats_;
};

/// Factory for self-contained simulated Thor RD stacks: each call builds an
/// independent SimTestCard (TRD32 CPU + scan logic) owned by its
/// ThorRdTarget.
ParallelCampaignRunner::TargetFactory MakeSimThorFactory(
    CampaignStore* store, const cpu::CpuConfig& config = cpu::CpuConfig());

/// Factory for the scan-less SWIFI simulator target (core/swifi_target).
ParallelCampaignRunner::TargetFactory MakeSwifiSimFactory(
    CampaignStore* store, const cpu::CpuConfig& config = cpu::CpuConfig());

}  // namespace goofi::core
