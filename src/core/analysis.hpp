// Analysis phase (paper §3.4): classify logged experiments into the paper's
// dependability measures.
//
//   Effective errors:
//     Detected    - caught by an EDM, classified per mechanism
//     Escaped     - caused a failure: incorrect results (value) or
//                   timeliness violations
//   Non-effective errors:
//     Latent      - observable state differs from the reference run but no
//                   detection and no failure
//     Overwritten - no difference from the reference run at all
//
// The paper notes "Currently, there is no support for automatic generation
// of software that analyses the LoggedSystemState table" and lists it as a
// planned extension — this module is that extension: it classifies directly
// from the database.
#pragma once

#include <map>

#include "core/campaign_store.hpp"
#include "core/types.hpp"

namespace goofi::core {

/// Classification of a single experiment.
struct ExperimentClassification {
  Outcome outcome = Outcome::kOverwritten;
  std::string mechanism;       ///< EDM name when detected
  bool value_failure = false;  ///< escaped: wrong outputs / plant failure
  bool timeliness_violation = false;  ///< escaped: missed the deadline
};

/// Classifies one experiment against the reference run.
ExperimentClassification Classify(const LoggedState& reference,
                                  const LoggedState& experiment);

/// Aggregate over a campaign.
struct AnalysisReport {
  std::string campaign;
  int total = 0;
  std::map<Outcome, int> by_outcome;
  std::map<std::string, int> detected_by_mechanism;
  int escaped_value = 0;
  int escaped_timeliness = 0;

  int Count(Outcome outcome) const;
  /// Error coverage: detected / (detected + escaped); NaN-free (returns 1.0
  /// when no error was effective).
  double ErrorCoverage() const;
  /// Fraction of experiments whose fault had any effect at all.
  double EffectivenessRatio() const;

  /// Confidence interval for a binomial proportion (Wilson score), used for
  /// the coverage estimate: fault-injection campaigns sample the fault
  /// space, so the paper's "error coverage" measure is an estimate with
  /// sampling error.
  struct Interval {
    double low = 0.0;
    double high = 1.0;
  };
  /// Wilson interval for ErrorCoverage() over the effective-error sample.
  /// `z` is the normal quantile (1.96 = 95%).
  Interval CoverageInterval(double z = 1.96) const;

  /// Fixed-width report table (one line per §3.4 measure).
  std::string ToString() const;
};

/// Classifies every experiment of a campaign against its reference run.
/// Detail rows (parentExperiment set) are excluded.
util::Result<AnalysisReport> AnalyzeCampaign(const CampaignStore& store,
                                             const std::string& campaign_name);

/// Same, broken down by fault-location group (the part of the injected
/// cell's name before the first '.', e.g. "regfile", "icache", or
/// "memory.text"). Experiments with multiple faults count under their first
/// fault's group.
util::Result<std::map<std::string, AnalysisReport>> AnalyzeByLocationGroup(
    const CampaignStore& store, const std::string& campaign_name);

}  // namespace goofi::core
