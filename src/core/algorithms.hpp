// FaultInjectionAlgorithms — the middle layer of the GOOFI architecture
// (paper Fig. 1/2).
//
// The class defines the fault-injection algorithms as concrete campaign
// drivers (FaultInjectorScifi, FaultInjectorSwifiPreRuntime,
// FaultInjectorSwifiRuntime) composed from abstract building-block methods
// that each TargetSystemInterface must implement. This is the paper's Fig. 2
// verbatim, with C++ naming:
//
//   paper (Java)           here
//   ---------------------  -------------------------
//   initTestCard()         InitTestCard()
//   loadWorkload()         LoadWorkload()
//   writeMemory()          WriteMemory()
//   runWorkload()          RunWorkload()
//   waitForBreakpoint()    WaitForBreakpoint()
//   readScanChain()        ReadScanChain()
//   injectFault()          InjectFault()
//   writeScanChain()       WriteScanChain()
//   waitForTermination()   WaitForTermination()
//   readMemory()           ReadMemory()
//   faultInjectorSCIFI()   FaultInjectorScifi()
//   faultInjectorSWIFI()   FaultInjectorSwifiPreRuntime()
//
// Runtime SWIFI (a §4 planned extension) adds two blocks — MutateImage()
// and InjectMemoryFault() — following §2.1: "The previously undefined
// abstract methods needed for defining the new fault injection technique are
// added to the Framework class."
#pragma once

#include <functional>
#include <memory>

#include "core/campaign_store.hpp"
#include "core/checkpoint.hpp"
#include "core/convergence.hpp"
#include "core/types.hpp"
#include "util/rng.hpp"

namespace goofi::cpu {
class Memory;
}

namespace goofi::core {

/// One enumerable fault location on the target (before an injection time is
/// chosen). Scan candidates carry chain/bit/cell; memory candidates carry
/// address/bit.
struct FaultCandidate {
  bool scan = true;
  std::string chain;
  uint32_t chain_bit = 0;
  std::string cell_name;
  uint32_t address = 0;
  uint32_t bit = 0;
};

/// Progress callback (the progress window of paper Fig. 7). Return false to
/// end the campaign early; block inside the callback to pause it. In a
/// parallel run (core::ParallelCampaignRunner) callbacks arrive on the
/// committer thread, still strictly in experiment order.
class ProgressMonitor {
 public:
  virtual ~ProgressMonitor() = default;
  virtual bool OnExperiment(int done, int total, const LoggedState& last) = 0;
};

class FaultInjectionAlgorithms {
 public:
  explicit FaultInjectionAlgorithms(CampaignStore* store) : store_(store) {}
  virtual ~FaultInjectionAlgorithms() = default;

  void SetProgressMonitor(ProgressMonitor* monitor) { monitor_ = monitor; }

  /// Optional pre-injection optimizer (a §4 planned extension): given the
  /// candidate and the chosen injection time, return false to skip the
  /// combination because the location does not hold live data there. See
  /// core/preinjection.
  using LivenessFilter =
      std::function<bool(const FaultCandidate&, uint64_t inject_instr)>;
  void SetLivenessFilter(LivenessFilter filter) {
    liveness_filter_ = std::move(filter);
  }

  // --- campaign drivers (concrete, Fig. 2) --------------------------------

  /// Scan-chain implemented fault injection.
  util::Status FaultInjectorScifi(const std::string& campaign_name);

  /// Pre-runtime software-implemented fault injection: the program/data
  /// image is mutated before execution starts (§1).
  util::Status FaultInjectorSwifiPreRuntime(const std::string& campaign_name);

  /// Runtime SWIFI: stop at a breakpoint and corrupt memory (extension).
  util::Status FaultInjectorSwifiRuntime(const std::string& campaign_name);

  /// Dispatches on the campaign's stored technique.
  util::Status RunCampaign(const std::string& campaign_name);

  /// Re-runs a logged experiment with the same faults in detail mode,
  /// logging one row per instruction with parentExperiment set to
  /// `experiment_name` (the E1/E2 scenario of §2.3).
  util::Status RerunDetailed(const std::string& experiment_name);

  /// Statistics for the current/last campaign.
  struct Stats {
    int experiments_run = 0;
    int injections_skipped_dead = 0;  ///< skipped by the liveness filter
    int experiments_resumed = 0;      ///< already in the database; skipped

    bool operator==(const Stats&) const = default;
  };
  const Stats& stats() const { return stats_; }

  // --- experiment-level API (used by core::ParallelCampaignRunner) ---------
  //
  // The campaign drivers above load the campaign, run every experiment and
  // commit each result to the store. The parallel runner instead prepares N
  // worker-owned targets once and pulls uncommitted experiment records off
  // them, so commits can be ordered and batched centrally.

  /// Binds this target to `campaign` and enumerates its fault space. Resets
  /// stats(). Does not touch the store.
  util::Status PrepareCampaign(const CampaignData& campaign);

  /// Runs experiment `index` of the prepared campaign — or the fault-free
  /// reference run when `index` < 0 — and returns its database row(s)
  /// (main row first, then any detail rows) WITHOUT committing them. Fault
  /// generation derives the per-experiment RNG stream from (campaign seed,
  /// index), so results are independent of call order across targets.
  util::Result<std::vector<CampaignStore::ExperimentRow>> ExecuteExperiment(
      int index);

  /// Draws experiment `index`'s fault list without running it: the same RNG
  /// stream, liveness-filter retries and skip accounting as
  /// ExecuteExperiment, so a later ExecutePlanned with the returned list is
  /// byte-identical to ExecuteExperiment(index). Lets the equivalence
  /// classer see every fault list up front (core/equivalence).
  util::Result<std::vector<FaultInstance>> PlanFaults(int index);

  /// Runs experiment `index` with a fault list previously returned by
  /// PlanFaults (on this or any other target prepared for the same
  /// campaign), skipping generation.
  util::Result<std::vector<CampaignStore::ExperimentRow>> ExecutePlanned(
      int index, std::vector<FaultInstance> faults);

  /// The experiment_data column for a fault list — shared by BuildRecords
  /// and equivalence-class row synthesis so synthesized rows are
  /// byte-identical to executed ones.
  static std::string ExperimentData(Technique technique,
                                    const std::vector<FaultInstance>& faults);

  /// Detail-mode row cap per experiment (§3.3 logging "as frequently as the
  /// target system allows" has to stop somewhere). Shared by the targets'
  /// detail loops and by equivalence-class suffix synthesis, which must
  /// refuse to synthesize from a capped representative.
  static constexpr size_t kMaxDetailRows = 20000;

  // --- checkpoint fast-forward ---------------------------------------------
  //
  // During PrepareCampaign the target (if it SupportsCheckpoints) runs the
  // fault-free workload once, snapshotting full target state every
  // `checkpoint_interval` retired instructions. Each experiment then warm-
  // starts from the nearest checkpoint strictly before its inject_instr
  // instead of re-simulating from reset. The warm path is bit-for-bit
  // equivalent: a warm campaign's database is byte-identical to a cold one.

  static constexpr uint64_t kDefaultCheckpointInterval = 4096;

  /// Retired instructions between golden-run snapshots; 0 disables
  /// checkpointing entirely.
  void SetCheckpointInterval(uint64_t interval) {
    checkpoint_interval_ = interval;
  }
  uint64_t checkpoint_interval() const { return checkpoint_interval_; }

  /// Forces warm-start even for campaigns whose faults may inject before the
  /// first checkpoint interval. By default warm-start engages only when
  /// inject_min_instr >= checkpoint_interval (all faults inject after the
  /// first snapshot, so building the cache is guaranteed to pay off).
  void SetForceWarmStart(bool force) { force_warm_start_ = force; }

  /// Installs a prebuilt cache (shared read-only across parallel workers).
  /// PrepareCampaign resets any installed cache, so install after preparing.
  void SetCheckpointCache(std::shared_ptr<const CheckpointCache> cache) {
    checkpoint_cache_ = std::move(cache);
  }
  const std::shared_ptr<const CheckpointCache>& checkpoint_cache() const {
    return checkpoint_cache_;
  }

  /// Experiments that started from a checkpoint instead of from reset.
  /// Deliberately outside Stats: warm and cold runs must compare equal.
  int warm_starts() const { return warm_starts_; }

  /// The target's simulated main memory, for copy-on-write residency and
  /// write-barrier counters (aggregated by the parallel runner, reported by
  /// the shell `stats` command). Null for targets without simulated memory.
  virtual const cpu::Memory* TargetMemory() const { return nullptr; }

  /// Whether this target implements BuildGoldenRun/RestoreCheckpoint.
  virtual bool SupportsCheckpoints() const { return false; }

  /// Runs the prepared campaign's fault-free workload once, adding a
  /// snapshot to `cache` at instruction 0 and every `interval` retired
  /// instructions until termination. Requires PrepareCampaign.
  util::Status BuildCheckpoints(uint64_t interval, CheckpointCache* cache) {
    return BuildGoldenRun(interval, cache, nullptr);
  }

  /// Golden-run builder behind BuildCheckpoints: runs the prepared
  /// campaign's fault-free workload, filling whichever products are
  /// non-null — `cache` with full-state snapshots every `interval` retired
  /// instructions up to the injection window, and `trace` with a
  /// convergence-pruning record (per-boundary state digests at every
  /// multiple of `interval` until termination, the golden final LoggedState,
  /// and — for detail-mode campaigns — the golden per-instruction rows).
  /// Requires PrepareCampaign.
  virtual util::Status BuildGoldenRun(uint64_t interval, CheckpointCache* cache,
                                      GoldenTrace* trace) {
    (void)interval;
    (void)cache;
    (void)trace;
    return util::FailedPrecondition(
        "this target does not support checkpointing");
  }

  // --- convergence pruning -------------------------------------------------
  //
  // With pruning enabled, PrepareCampaign additionally records a GoldenTrace
  // during the golden run. Experiments then compare their full-state digest
  // against the golden digest at every checkpoint boundary after injection;
  // on a (blob-verified) match the run terminates immediately and its
  // remaining rows are synthesized from the recorded golden data — the
  // database stays byte-identical to a full run. See core/convergence.hpp.

  /// Master switch; off by default. Set before PrepareCampaign.
  void SetConvergencePruning(bool enabled) { convergence_pruning_ = enabled; }
  bool convergence_pruning() const { return convergence_pruning_; }

  /// Installs a prebuilt golden trace (shared read-only across parallel
  /// workers). PrepareCampaign resets any installed trace, so install after
  /// preparing. Installing a trace implies pruning for matching campaigns.
  void SetGoldenTrace(std::shared_ptr<const GoldenTrace> trace) {
    golden_trace_ = std::move(trace);
  }
  const std::shared_ptr<const GoldenTrace>& golden_trace() const {
    return golden_trace_;
  }

  /// Installs a cross-experiment suffix memo (shared mutable, thread-safe).
  /// PrepareCampaign creates a private one when pruning is on and none is
  /// installed afterwards.
  void SetConvergenceMemo(std::shared_ptr<ConvergenceMemo> memo) {
    convergence_memo_ = std::move(memo);
  }
  const std::shared_ptr<ConvergenceMemo>& convergence_memo() const {
    return convergence_memo_;
  }

  /// Ensures the worker-local prerequisites for hashing against an installed
  /// golden trace (memory baseline etc.) without rebuilding the trace.
  /// ParallelCampaignRunner calls this on each worker after SetGoldenTrace.
  virtual util::Status PrepareGoldenBaseline() { return util::Status::Ok(); }

  /// Pruning observability. Like warm_starts(), deliberately outside Stats:
  /// pruned and unpruned runs must compare equal on Stats.
  const ConvergenceStats& prune_stats() const { return prune_stats_; }

 protected:
  /// Restores the target to `checkpoint`'s state and re-arms triggers for
  /// the current `faults_`, replacing InitTestCard..RunWorkload +
  /// fast-forwarding execution to the checkpoint's instruction.
  virtual util::Status RestoreCheckpoint(const Checkpoint& checkpoint) {
    (void)checkpoint;
    return util::FailedPrecondition(
        "this target does not support checkpointing");
  }

  // --- abstract building blocks (implemented per target system) ----------

  virtual util::Status InitTestCard() = 0;
  virtual util::Status LoadWorkload() = 0;
  /// Downloads the workload's initial input data into target memory.
  virtual util::Status WriteMemory() = 0;
  /// Arms breakpoints/triggers and starts execution.
  virtual util::Status RunWorkload() = 0;
  /// Blocks until the injection breakpoint fires (servicing environment
  /// exchanges on the way).
  virtual util::Status WaitForBreakpoint() = 0;
  /// Captures the chains that the current faults touch.
  virtual util::Status ReadScanChain() = 0;
  /// Applies the current faults to the captured images.
  virtual util::Status InjectFault() = 0;
  /// Writes the fault-injected images back.
  virtual util::Status WriteScanChain() = 0;
  /// Resumes until a termination condition (§3.2): detection, workload end,
  /// timeout or the iteration budget.
  virtual util::Status WaitForTermination() = 0;
  /// Reads the workload's output locations from target memory.
  virtual util::Status ReadMemory() = 0;

  // SWIFI building blocks:
  /// Pre-runtime: corrupts the downloaded image before RunWorkload.
  virtual util::Status MutateImage() = 0;
  /// Runtime: corrupts memory while stopped at the breakpoint.
  virtual util::Status InjectMemoryFault() = 0;

  /// Enumerates the fault space for one location selector.
  virtual util::Result<std::vector<FaultCandidate>> EnumerateFaultSpace(
      const FaultLocationSelector& selector) = 0;

  /// Assembles the logged system state of the just-finished experiment.
  virtual util::Result<LoggedState> CollectState() = 0;

  // --- context shared between driver and blocks ---------------------------

  CampaignStore* store_;
  ProgressMonitor* monitor_ = nullptr;
  LivenessFilter liveness_filter_;
  CampaignData campaign_;
  std::vector<FaultInstance> faults_;  ///< faults of the current experiment
  util::Rng rng_;
  Stats stats_;

  /// Filled by WaitForTermination in detail mode: one entry per executed
  /// instruction after injection.
  std::vector<LoggedState> detail_log_;

  // Convergence-pruning context, consumed by the target-level run loops.
  std::shared_ptr<const GoldenTrace> golden_trace_;
  std::shared_ptr<ConvergenceMemo> convergence_memo_;
  ConvergenceStats prune_stats_;
  bool convergence_pruning_ = false;

 private:
  /// The per-experiment block sequence for one technique.
  using ExperimentBody = util::Status (FaultInjectionAlgorithms::*)();

  util::Status ScifiExperiment();
  util::Status SwifiPreRuntimeExperiment();
  util::Status SwifiRuntimeExperiment();

  /// Warm-start bodies: the same block sequences with the cold prefix
  /// (InitTestCard..RunWorkload, pre-breakpoint execution) replaced by
  /// RestoreCheckpoint. Pre-runtime SWIFI has no warm form — it corrupts the
  /// image before execution, so there is no shared fault-free prefix.
  util::Status ScifiExperimentFrom(const Checkpoint& checkpoint);
  util::Status SwifiRuntimeExperimentFrom(const Checkpoint& checkpoint);

  /// Dispatches one experiment body, taking the warm-start path when a
  /// usable checkpoint exists for the current faults.
  util::Status RunBody(ExperimentBody body);

  /// Whether PrepareCampaign should auto-build a checkpoint cache.
  bool ShouldAutoCheckpoint() const;

  static ExperimentBody BodyForTechnique(Technique technique);

  util::Status DriveCampaign(const std::string& campaign_name,
                             ExperimentBody body);

  /// Runs the fault-free reference execution and logs it.
  util::Status MakeReferenceRun(ExperimentBody body);

  /// Draws `faults_` for experiment `index` from the campaign's fault space.
  util::Status GenerateFaults(const std::vector<FaultCandidate>& space,
                              int index);

  /// Assembles the database rows of the just-finished experiment: the main
  /// row plus one row per detail-mode entry. Clears the detail log.
  util::Result<std::vector<CampaignStore::ExperimentRow>> BuildRecords(
      const std::string& experiment_name, const std::string& parent);

  /// Logs the just-finished experiment (and detail rows, if any).
  util::Status LogExperiment(const std::string& experiment_name,
                             const std::string& parent);

  std::vector<FaultCandidate> fault_space_;

  uint64_t checkpoint_interval_ = kDefaultCheckpointInterval;
  bool force_warm_start_ = false;
  std::shared_ptr<const CheckpointCache> checkpoint_cache_;
  int warm_starts_ = 0;
};

}  // namespace goofi::core
