// FaultInjectionAlgorithms — the middle layer of the GOOFI architecture
// (paper Fig. 1/2).
//
// The class defines the fault-injection algorithms as concrete campaign
// drivers (FaultInjectorScifi, FaultInjectorSwifiPreRuntime,
// FaultInjectorSwifiRuntime) composed from abstract building-block methods
// that each TargetSystemInterface must implement. This is the paper's Fig. 2
// verbatim, with C++ naming:
//
//   paper (Java)           here
//   ---------------------  -------------------------
//   initTestCard()         InitTestCard()
//   loadWorkload()         LoadWorkload()
//   writeMemory()          WriteMemory()
//   runWorkload()          RunWorkload()
//   waitForBreakpoint()    WaitForBreakpoint()
//   readScanChain()        ReadScanChain()
//   injectFault()          InjectFault()
//   writeScanChain()       WriteScanChain()
//   waitForTermination()   WaitForTermination()
//   readMemory()           ReadMemory()
//   faultInjectorSCIFI()   FaultInjectorScifi()
//   faultInjectorSWIFI()   FaultInjectorSwifiPreRuntime()
//
// Runtime SWIFI (a §4 planned extension) adds two blocks — MutateImage()
// and InjectMemoryFault() — following §2.1: "The previously undefined
// abstract methods needed for defining the new fault injection technique are
// added to the Framework class."
#pragma once

#include <functional>

#include "core/campaign_store.hpp"
#include "core/types.hpp"
#include "util/rng.hpp"

namespace goofi::core {

/// One enumerable fault location on the target (before an injection time is
/// chosen). Scan candidates carry chain/bit/cell; memory candidates carry
/// address/bit.
struct FaultCandidate {
  bool scan = true;
  std::string chain;
  uint32_t chain_bit = 0;
  std::string cell_name;
  uint32_t address = 0;
  uint32_t bit = 0;
};

/// Progress callback (the progress window of paper Fig. 7). Return false to
/// end the campaign early; block inside the callback to pause it. In a
/// parallel run (core::ParallelCampaignRunner) callbacks arrive on the
/// committer thread, still strictly in experiment order.
class ProgressMonitor {
 public:
  virtual ~ProgressMonitor() = default;
  virtual bool OnExperiment(int done, int total, const LoggedState& last) = 0;
};

class FaultInjectionAlgorithms {
 public:
  explicit FaultInjectionAlgorithms(CampaignStore* store) : store_(store) {}
  virtual ~FaultInjectionAlgorithms() = default;

  void SetProgressMonitor(ProgressMonitor* monitor) { monitor_ = monitor; }

  /// Optional pre-injection optimizer (a §4 planned extension): given the
  /// candidate and the chosen injection time, return false to skip the
  /// combination because the location does not hold live data there. See
  /// core/preinjection.
  using LivenessFilter =
      std::function<bool(const FaultCandidate&, uint64_t inject_instr)>;
  void SetLivenessFilter(LivenessFilter filter) {
    liveness_filter_ = std::move(filter);
  }

  // --- campaign drivers (concrete, Fig. 2) --------------------------------

  /// Scan-chain implemented fault injection.
  util::Status FaultInjectorScifi(const std::string& campaign_name);

  /// Pre-runtime software-implemented fault injection: the program/data
  /// image is mutated before execution starts (§1).
  util::Status FaultInjectorSwifiPreRuntime(const std::string& campaign_name);

  /// Runtime SWIFI: stop at a breakpoint and corrupt memory (extension).
  util::Status FaultInjectorSwifiRuntime(const std::string& campaign_name);

  /// Dispatches on the campaign's stored technique.
  util::Status RunCampaign(const std::string& campaign_name);

  /// Re-runs a logged experiment with the same faults in detail mode,
  /// logging one row per instruction with parentExperiment set to
  /// `experiment_name` (the E1/E2 scenario of §2.3).
  util::Status RerunDetailed(const std::string& experiment_name);

  /// Statistics for the current/last campaign.
  struct Stats {
    int experiments_run = 0;
    int injections_skipped_dead = 0;  ///< skipped by the liveness filter
    int experiments_resumed = 0;      ///< already in the database; skipped

    bool operator==(const Stats&) const = default;
  };
  const Stats& stats() const { return stats_; }

  // --- experiment-level API (used by core::ParallelCampaignRunner) ---------
  //
  // The campaign drivers above load the campaign, run every experiment and
  // commit each result to the store. The parallel runner instead prepares N
  // worker-owned targets once and pulls uncommitted experiment records off
  // them, so commits can be ordered and batched centrally.

  /// Binds this target to `campaign` and enumerates its fault space. Resets
  /// stats(). Does not touch the store.
  util::Status PrepareCampaign(const CampaignData& campaign);

  /// Runs experiment `index` of the prepared campaign — or the fault-free
  /// reference run when `index` < 0 — and returns its database row(s)
  /// (main row first, then any detail rows) WITHOUT committing them. Fault
  /// generation derives the per-experiment RNG stream from (campaign seed,
  /// index), so results are independent of call order across targets.
  util::Result<std::vector<CampaignStore::ExperimentRow>> ExecuteExperiment(
      int index);

 protected:
  // --- abstract building blocks (implemented per target system) ----------

  virtual util::Status InitTestCard() = 0;
  virtual util::Status LoadWorkload() = 0;
  /// Downloads the workload's initial input data into target memory.
  virtual util::Status WriteMemory() = 0;
  /// Arms breakpoints/triggers and starts execution.
  virtual util::Status RunWorkload() = 0;
  /// Blocks until the injection breakpoint fires (servicing environment
  /// exchanges on the way).
  virtual util::Status WaitForBreakpoint() = 0;
  /// Captures the chains that the current faults touch.
  virtual util::Status ReadScanChain() = 0;
  /// Applies the current faults to the captured images.
  virtual util::Status InjectFault() = 0;
  /// Writes the fault-injected images back.
  virtual util::Status WriteScanChain() = 0;
  /// Resumes until a termination condition (§3.2): detection, workload end,
  /// timeout or the iteration budget.
  virtual util::Status WaitForTermination() = 0;
  /// Reads the workload's output locations from target memory.
  virtual util::Status ReadMemory() = 0;

  // SWIFI building blocks:
  /// Pre-runtime: corrupts the downloaded image before RunWorkload.
  virtual util::Status MutateImage() = 0;
  /// Runtime: corrupts memory while stopped at the breakpoint.
  virtual util::Status InjectMemoryFault() = 0;

  /// Enumerates the fault space for one location selector.
  virtual util::Result<std::vector<FaultCandidate>> EnumerateFaultSpace(
      const FaultLocationSelector& selector) = 0;

  /// Assembles the logged system state of the just-finished experiment.
  virtual util::Result<LoggedState> CollectState() = 0;

  // --- context shared between driver and blocks ---------------------------

  CampaignStore* store_;
  ProgressMonitor* monitor_ = nullptr;
  LivenessFilter liveness_filter_;
  CampaignData campaign_;
  std::vector<FaultInstance> faults_;  ///< faults of the current experiment
  util::Rng rng_;
  Stats stats_;

  /// Filled by WaitForTermination in detail mode: one entry per executed
  /// instruction after injection.
  std::vector<LoggedState> detail_log_;

 private:
  /// The per-experiment block sequence for one technique.
  using ExperimentBody = util::Status (FaultInjectionAlgorithms::*)();

  util::Status ScifiExperiment();
  util::Status SwifiPreRuntimeExperiment();
  util::Status SwifiRuntimeExperiment();

  static ExperimentBody BodyForTechnique(Technique technique);

  util::Status DriveCampaign(const std::string& campaign_name,
                             ExperimentBody body);

  /// Runs the fault-free reference execution and logs it.
  util::Status MakeReferenceRun(ExperimentBody body);

  /// Draws `faults_` for experiment `index` from the campaign's fault space.
  util::Status GenerateFaults(const std::vector<FaultCandidate>& space,
                              int index);

  /// Assembles the database rows of the just-finished experiment: the main
  /// row plus one row per detail-mode entry. Clears the detail log.
  util::Result<std::vector<CampaignStore::ExperimentRow>> BuildRecords(
      const std::string& experiment_name, const std::string& parent);

  /// Logs the just-finished experiment (and detail rows, if any).
  util::Status LogExperiment(const std::string& experiment_name,
                             const std::string& parent);

  std::vector<FaultCandidate> fault_space_;
};

}  // namespace goofi::core
