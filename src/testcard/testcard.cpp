#include "testcard/testcard.hpp"

#include <bit>

#include "cpu/state_hash.hpp"

namespace goofi::testcard {

namespace {
uint32_t SelectBits(size_t num_chains) {
  uint32_t bits = 1;
  while ((1u << bits) < num_chains) ++bits;
  return bits;
}
}  // namespace

SimTestCard::SimTestCard(const cpu::CpuConfig& cpu_config,
                         const LinkConfig& link_config)
    : cpu_(std::make_unique<cpu::Cpu>(cpu_config)),
      registry_(cpu_->BuildStateRegistry()),
      chains_(scan::ScanChainSet::BuildDefault(registry_)),
      tap_(this),
      debug_(cpu_.get()),
      link_(link_config),
      noise_(link_config.noise_seed) {}

util::Status SimTestCard::Init() {
  extra_us_ += link_.op_overhead_us;
  cpu_->PowerCycle();
  debug_.ClearTriggers();
  tap_.Reset();
  chain_select_ = 0;
  entry_ = 0;
  return util::Status::Ok();
}

util::Status SimTestCard::LoadWorkload(const isa::AssembledProgram& program) {
  extra_us_ += link_.op_overhead_us;
  // By convention a workload marks the end of its code with an `_etext`
  // label; everything after it is writable data. Without the label the whole
  // image is protected text.
  uint32_t text_bytes = 0;
  const auto etext = program.symbols.find("_etext");
  if (etext != program.symbols.end() && etext->second > program.base_address) {
    text_bytes = etext->second - program.base_address;
  }
  GOOFI_RETURN_IF_ERROR(
      cpu_->LoadProgram(program.base_address, program.words, text_bytes));
  entry_ = program.entry;
  return util::Status::Ok();
}

util::Status SimTestCard::ResetTarget() {
  extra_us_ += link_.op_overhead_us;
  cpu_->Reset(entry_);
  debug_.ResetCounters();
  return util::Status::Ok();
}

util::Status SimTestCard::WriteMemory(uint32_t address,
                                      const std::vector<uint32_t>& words) {
  extra_us_ += link_.op_overhead_us;
  for (size_t i = 0; i < words.size(); ++i) {
    GOOFI_RETURN_IF_ERROR(
        cpu_->HostWriteWord(address + static_cast<uint32_t>(i) * 4, words[i]));
  }
  return util::Status::Ok();
}

util::Result<std::vector<uint32_t>> SimTestCard::ReadMemory(uint32_t address,
                                                            uint32_t num_words) {
  extra_us_ += link_.op_overhead_us;
  std::vector<uint32_t> out;
  out.reserve(num_words);
  for (uint32_t i = 0; i < num_words; ++i) {
    auto word = cpu_->memory().HostRead(address + i * 4);
    if (!word.ok()) return word.status();
    out.push_back(word.value());
  }
  return out;
}

int SimTestCard::AddTrigger(const scan::Trigger& trigger) {
  return debug_.AddTrigger(trigger);
}

void SimTestCard::ClearTriggers() { debug_.ClearTriggers(); }

scan::DebugRunResult SimTestCard::Run(uint64_t max_cycles) {
  return use_fast_run_ ? debug_.RunUntilEventFast(max_cycles)
                       : debug_.RunUntilEvent(max_cycles);
}

cpu::StepOutcome SimTestCard::SingleStep() { return cpu_->Step(); }

const scan::ScanChain* SimTestCard::SelectedChain() const {
  if (chain_select_ < chains_.chains().size()) {
    return &chains_.chains()[chain_select_];
  }
  return nullptr;
}

uint32_t SimTestCard::DrLength(scan::TapInstruction instruction) {
  switch (instruction) {
    case scan::TapInstruction::kBypass:
      return 1;
    case scan::TapInstruction::kIdcode:
      return 32;
    case scan::TapInstruction::kScanN:
      return SelectBits(chains_.chains().size());
    case scan::TapInstruction::kSample:
    case scan::TapInstruction::kExtest: {
      const scan::ScanChain* boundary = chains_.Find("boundary");
      return boundary != nullptr ? boundary->length_bits() : 1;
    }
    case scan::TapInstruction::kIntest: {
      const scan::ScanChain* chain = SelectedChain();
      return chain != nullptr ? chain->length_bits() : 1;
    }
  }
  return 1;
}

util::BitVec SimTestCard::CaptureDr(scan::TapInstruction instruction) {
  switch (instruction) {
    case scan::TapInstruction::kBypass:
      return util::BitVec(1);
    case scan::TapInstruction::kIdcode: {
      util::BitVec id(32);
      id.DepositWord(0, scan::kIdcodeValue, 32);
      return id;
    }
    case scan::TapInstruction::kScanN: {
      util::BitVec sel(SelectBits(chains_.chains().size()));
      sel.DepositWord(0, chain_select_, sel.size());
      return sel;
    }
    case scan::TapInstruction::kSample:
    case scan::TapInstruction::kExtest: {
      const scan::ScanChain* boundary = chains_.Find("boundary");
      return boundary != nullptr ? boundary->Capture() : util::BitVec(1);
    }
    case scan::TapInstruction::kIntest: {
      const scan::ScanChain* chain = SelectedChain();
      return chain != nullptr ? chain->Capture() : util::BitVec(1);
    }
  }
  return util::BitVec(1);
}

void SimTestCard::UpdateDr(scan::TapInstruction instruction,
                           const util::BitVec& value) {
  switch (instruction) {
    case scan::TapInstruction::kScanN:
      chain_select_ = static_cast<uint32_t>(value.ExtractWord(0, value.size()));
      break;
    case scan::TapInstruction::kExtest: {
      const scan::ScanChain* boundary = chains_.Find("boundary");
      if (boundary != nullptr) boundary->Update(value);
      break;
    }
    case scan::TapInstruction::kIntest: {
      const scan::ScanChain* chain = SelectedChain();
      if (chain != nullptr) {
        chain->Update(value);
        // A scan write into the instruction-cache chain rewrites line data
        // behind the memory hierarchy; drop every predecode. (The per-fetch
        // raw-word tag check in DecodeCache::Resolve would catch stale
        // entries anyway — this keeps the cache contents honest and the
        // flush counter meaningful.)
        if (chain->name() == "internal_icache") {
          cpu_->decode_cache().InvalidateAll();
        }
      }
      break;
    }
    case scan::TapInstruction::kSample:   // observe-only
    case scan::TapInstruction::kIdcode:
    case scan::TapInstruction::kBypass:
      break;
  }
}

util::BitVec SimTestCard::ShiftWithNoise(const util::BitVec& out) {
  util::BitVec captured;
  ShiftWithNoiseInto(out, &captured);
  return captured;
}

void SimTestCard::ShiftWithNoiseInto(const util::BitVec& out,
                                     util::BitVec* captured) {
  if (link_.bit_error_rate <= 0.0) {
    tap_.ShiftDataInto(out, captured);
    return;
  }
  util::BitVec noisy = out;
  for (size_t i = 0; i < noisy.size(); ++i) {
    if (noise_.NextBool(link_.bit_error_rate)) noisy.Flip(i);
  }
  tap_.ShiftDataInto(noisy, captured);
  // TDO path is equally noisy.
  for (size_t i = 0; i < captured->size(); ++i) {
    if (noise_.NextBool(link_.bit_error_rate)) captured->Flip(i);
  }
}

util::Result<util::BitVec> SimTestCard::ReadScanChain(const std::string& chain,
                                                      bool restore) {
  util::BitVec out;
  GOOFI_RETURN_IF_ERROR(ReadScanChainInto(chain, restore, &out));
  return out;
}

util::Status SimTestCard::ReadScanChainInto(const std::string& chain,
                                            bool restore, util::BitVec* out) {
  const int index = chains_.IndexOf(chain);
  if (index < 0) return util::NotFound("no scan chain " + chain);
  extra_us_ += link_.op_overhead_us;

  // Select the chain via SCAN_N, then INTEST.
  tap_.LoadInstruction(scan::TapInstruction::kScanN);
  select_scratch_.ResizeZero(SelectBits(chains_.chains().size()));
  select_scratch_.DepositWord(0, static_cast<uint32_t>(index),
                              select_scratch_.size());
  ShiftWithNoiseInto(select_scratch_, &shift_scratch_);

  tap_.LoadInstruction(scan::TapInstruction::kIntest);
  zeros_scratch_.ResizeZero(
      chains_.chains()[static_cast<size_t>(index)].length_bits());
  ShiftWithNoiseInto(zeros_scratch_, out);
  if (restore) {
    // Second pass: write the captured image back so the (destructive) read
    // leaves target state unchanged.
    ShiftWithNoiseInto(*out, &shift_scratch_);
  }
  return util::Status::Ok();
}

util::Status SimTestCard::MarkMemoryBaseline() {
  cpu_->MarkMemoryBaseline();
  return util::Status::Ok();
}

util::Result<CardSnapshot> SimTestCard::SaveSnapshot() {
  CardSnapshot snapshot;
  snapshot.cpu = cpu_->SaveSnapshot();
  snapshot.tap = tap_.SaveSnapshot();
  snapshot.debug = debug_.SaveSnapshot();
  snapshot.noise = noise_;
  snapshot.chain_select = chain_select_;
  snapshot.entry = entry_;
  snapshot.extra_us = extra_us_;
  return snapshot;
}

util::Status SimTestCard::RestoreSnapshot(const CardSnapshot& snapshot) {
  cpu_->RestoreSnapshot(snapshot.cpu);
  tap_.RestoreSnapshot(snapshot.tap);
  debug_.RestoreSnapshot(snapshot.debug);
  noise_ = snapshot.noise;
  chain_select_ = snapshot.chain_select;
  entry_ = snapshot.entry;
  extra_us_ = snapshot.extra_us;
  return util::Status::Ok();
}

util::Status SimTestCard::HashTargetState(cpu::StateHasher* hasher) {
  // Everything that can influence future execution, and nothing that cannot:
  //
  //  * Cpu: full execution state (regs, pc/ir, latches, counters, EDM, both
  //    parity caches, canonical memory delta).
  //  * Link-noise RNG: only when bit_error_rate > 0. At rate 0 every shift
  //    takes the ShiftWithNoiseInto early-return and draws nothing, so the
  //    RNG is inert; including it would block convergence for no reason
  //    (golden did no pre-boundary scan ops, a faulty run did injection ops,
  //    so draw *counts* — not behaviour — differ). At a positive rate the
  //    draw sequence does shape future reads, so it is hashed; in practice
  //    that auto-disables pruning under noise, which is exactly right.
  //
  // Deliberately excluded (behaviourally inert for any future host-driven
  // operation, but different between golden and faulty runs):
  //
  //  * TAP controller state + chain_select: every scan operation starts with
  //    LoadInstruction, which asserts the FSM is parked in kRunTestIdle or
  //    kTestLogicReset and navigates deterministically from either; chain
  //    selection is re-shifted via kScanN before every access. Golden (fresh
  //    reset, never scanned) and faulty (parked in kRunTestIdle after the
  //    injection) TAP states differ but are operationally equivalent.
  //  * DebugUnit triggers + hit counts: triggers are cleared and re-armed by
  //    ArmTriggers before every run phase, so leftover trigger state never
  //    survives into comparable execution.
  //  * extra_us_/tck_count: host-side cost accounting, never fed back.
  //  * entry_: fixed per workload, identical by construction.
  cpu_->HashExecutionState(hasher);
  if (link_.bit_error_rate > 0.0) {
    const util::Rng::State noise = noise_.GetState();
    for (uint64_t word : noise.s) hasher->U64(word);
    hasher->Bool(noise.have_spare_gaussian);
    hasher->Double(noise.spare_gaussian);
  }
  return util::Status::Ok();
}

util::Status SimTestCard::WriteScanChain(const std::string& chain,
                                         const util::BitVec& image) {
  const int index = chains_.IndexOf(chain);
  if (index < 0) return util::NotFound("no scan chain " + chain);
  const scan::ScanChain& target = chains_.chains()[static_cast<size_t>(index)];
  if (image.size() != target.length_bits()) {
    return util::InvalidArgument("image size mismatch for chain " + chain);
  }
  extra_us_ += link_.op_overhead_us;

  tap_.LoadInstruction(scan::TapInstruction::kScanN);
  util::BitVec select(SelectBits(chains_.chains().size()));
  select.DepositWord(0, static_cast<uint32_t>(index), select.size());
  ShiftWithNoise(select);

  tap_.LoadInstruction(scan::TapInstruction::kIntest);
  ShiftWithNoise(image);
  return util::Status::Ok();
}

double SimTestCard::link_time_us() const {
  return extra_us_ +
         static_cast<double>(tap_.tck_count()) / link_.tck_mhz;  // us at MHz
}

}  // namespace goofi::testcard
