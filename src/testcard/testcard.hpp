// The test card: host-side adapter between GOOFI and the target system.
//
// In the paper's setup, the host talks to the Thor RD board through a test
// card that drives the IEEE 1149.1 test logic. The `initTestCard()` abstract
// method in FaultInjectionAlgorithms (Fig. 2) initializes exactly this
// object. `TestCard` is the interface the TargetSystemInterface classes
// program against; `SimTestCard` binds it to the simulated TRD32 target,
// routing every scan access through the TAP controller bit-by-bit and
// accounting link time the way a real probe would.
#pragma once

#include <memory>

#include "cpu/cpu.hpp"
#include "isa/assembler.hpp"
#include "scan/chain.hpp"
#include "scan/debug.hpp"
#include "scan/tap.hpp"
#include "util/rng.hpp"

namespace goofi::testcard {

/// Everything the test card and its target hold at one point in time: CPU
/// state (with memory as a dirty-page delta), TAP controller, debug-unit
/// triggers + occurrence counters, link-noise RNG and card bookkeeping.
/// Captured by the checkpoint engine during the golden run.
struct CardSnapshot {
  cpu::CpuSnapshot cpu;
  scan::TapController::Snapshot tap;
  scan::DebugUnit::Snapshot debug;
  util::Rng noise{0};
  uint32_t chain_select = 0;
  uint32_t entry = 0;
  double extra_us = 0.0;

  /// Approximate heap footprint, for checkpoint-store accounting.
  size_t MemoryBytes() const {
    return sizeof(CardSnapshot) + cpu.MemoryBytes() +
           debug.triggers.size() * sizeof(scan::Trigger) +
           debug.hit_counts.size() * sizeof(uint64_t);
  }
};

/// Host-visible target operations.
class TestCard {
 public:
  virtual ~TestCard() = default;

  /// Powers up / resets the card and the target test logic.
  virtual util::Status Init() = 0;

  /// Downloads a workload image and records its entry point.
  virtual util::Status LoadWorkload(const isa::AssembledProgram& program) = 0;

  /// Resets the target CPU to the loaded workload's entry point.
  virtual util::Status ResetTarget() = 0;

  /// Host memory access (through the test logic, bypassing CPU protection).
  virtual util::Status WriteMemory(uint32_t address,
                                   const std::vector<uint32_t>& words) = 0;
  virtual util::Result<std::vector<uint32_t>> ReadMemory(uint32_t address,
                                                         uint32_t num_words) = 0;

  /// Debug-event configuration (breakpoints / triggers).
  virtual int AddTrigger(const scan::Trigger& trigger) = 0;
  virtual void ClearTriggers() = 0;

  /// Runs the target until a debug event, halt, detection or cycle budget.
  virtual scan::DebugRunResult Run(uint64_t max_cycles) = 0;

  /// Whether Run() (and golden-run fast-forwarding layered on top) drives
  /// the target through the predecoded superblock fast path. Real hardware
  /// runs at its own speed, so the base card reports false.
  virtual bool use_fast_run() const { return false; }

  /// Executes exactly one instruction (detail mode logging).
  virtual cpu::StepOutcome SingleStep() = 0;

  /// Scan-chain access. `restore` re-writes the captured image after the
  /// (destructive) read shift so target state is preserved; the SCIFI
  /// read-modify-write path passes restore=false and follows up with
  /// WriteScanChain, exactly like the paper's
  /// readScanChain/injectFault/writeScanChain sequence.
  virtual util::Result<util::BitVec> ReadScanChain(const std::string& chain,
                                                   bool restore) = 0;
  virtual util::Status WriteScanChain(const std::string& chain,
                                      const util::BitVec& image) = 0;

  /// Like ReadScanChain but fills a caller-owned buffer, so per-instruction
  /// capture loops (detail-mode logging) avoid an allocation per read. The
  /// default forwards to ReadScanChain.
  virtual util::Status ReadScanChainInto(const std::string& chain, bool restore,
                                         util::BitVec* out) {
    auto captured = ReadScanChain(chain, restore);
    if (!captured.ok()) return captured.status();
    *out = std::move(captured).value();
    return util::Status::Ok();
  }

  // --- checkpointing (optional capability) ---------------------------------
  // Cards for real hardware cannot snapshot a live board; only simulated
  // cards implement these, and the defaults fail accordingly.

  /// Declares the target's current memory contents as the delta baseline.
  virtual util::Status MarkMemoryBaseline() {
    return util::FailedPrecondition(
        "this test card does not support checkpointing");
  }

  /// Captures the full card + target state.
  virtual util::Result<CardSnapshot> SaveSnapshot() {
    return util::FailedPrecondition(
        "this test card does not support checkpointing");
  }

  /// Restores a snapshot captured on an identically configured card whose
  /// memory baseline matches.
  virtual util::Status RestoreSnapshot(const CardSnapshot& snapshot) {
    (void)snapshot;
    return util::FailedPrecondition(
        "this test card does not support checkpointing");
  }

  // --- convergence hashing (optional capability) ---------------------------
  // Like checkpointing: requires full observability of the target, so only
  // simulated cards support it.

  /// Whether HashTargetState works on this card.
  virtual bool SupportsStateHash() const { return false; }

  /// Appends every piece of card + target state that can influence future
  /// execution to `hasher`. Two cards with equal digested streams behave
  /// identically from here on (given identical host-side driving).
  virtual util::Status HashTargetState(cpu::StateHasher* hasher) {
    (void)hasher;
    return util::FailedPrecondition(
        "this test card does not support state hashing");
  }

  /// Chain topology (for campaign configuration).
  virtual const scan::ScanChainSet& chains() const = 0;

  /// Target observation.
  virtual const cpu::Cpu& cpu() const = 0;
  virtual cpu::Cpu& mutable_cpu() = 0;

  /// Total host-side microseconds spent on link traffic so far (simulated).
  virtual double link_time_us() const = 0;
};

/// Link timing/noise model for the simulated card.
struct LinkConfig {
  double tck_mhz = 10.0;          ///< TCK frequency for scan traffic
  double op_overhead_us = 50.0;   ///< per-operation host/driver overhead
  double bit_error_rate = 0.0;    ///< probability a shifted TDI bit flips
  uint64_t noise_seed = 0xBADC0DE;
};

/// The simulated test card around a TRD32 target.
class SimTestCard final : public TestCard, private scan::TapController::DrHandler {
 public:
  explicit SimTestCard(const cpu::CpuConfig& cpu_config = cpu::CpuConfig(),
                       const LinkConfig& link_config = LinkConfig());

  util::Status Init() override;
  util::Status LoadWorkload(const isa::AssembledProgram& program) override;
  util::Status ResetTarget() override;
  util::Status WriteMemory(uint32_t address,
                           const std::vector<uint32_t>& words) override;
  util::Result<std::vector<uint32_t>> ReadMemory(uint32_t address,
                                                 uint32_t num_words) override;
  int AddTrigger(const scan::Trigger& trigger) override;
  void ClearTriggers() override;
  scan::DebugRunResult Run(uint64_t max_cycles) override;
  cpu::StepOutcome SingleStep() override;
  util::Result<util::BitVec> ReadScanChain(const std::string& chain,
                                           bool restore) override;
  util::Status WriteScanChain(const std::string& chain,
                              const util::BitVec& image) override;
  util::Status ReadScanChainInto(const std::string& chain, bool restore,
                                 util::BitVec* out) override;
  util::Status MarkMemoryBaseline() override;
  util::Result<CardSnapshot> SaveSnapshot() override;
  util::Status RestoreSnapshot(const CardSnapshot& snapshot) override;
  bool SupportsStateHash() const override { return true; }
  util::Status HashTargetState(cpu::StateHasher* hasher) override;
  const scan::ScanChainSet& chains() const override { return chains_; }
  const cpu::Cpu& cpu() const override { return *cpu_; }
  cpu::Cpu& mutable_cpu() override { return *cpu_; }
  double link_time_us() const override;

  /// TCK cycles issued so far (scan-cost accounting for benches).
  uint64_t tck_count() const { return tap_.tck_count(); }

  uint32_t workload_entry() const { return entry_; }

  /// Fast path on/off switch (on by default). The reference interpreter is
  /// kept selectable so differential suites can prove byte-identical
  /// campaign databases against it.
  bool use_fast_run() const override { return use_fast_run_; }
  void set_use_fast_run(bool enabled) { use_fast_run_ = enabled; }

 private:
  // TapController::DrHandler:
  uint32_t DrLength(scan::TapInstruction instruction) override;
  util::BitVec CaptureDr(scan::TapInstruction instruction) override;
  void UpdateDr(scan::TapInstruction instruction,
                const util::BitVec& value) override;

  /// DR scan through the TAP with link-noise applied to TDI bits.
  util::BitVec ShiftWithNoise(const util::BitVec& out);

  /// Buffer-reusing variant of ShiftWithNoise for hot capture loops.
  void ShiftWithNoiseInto(const util::BitVec& out, util::BitVec* captured);

  const scan::ScanChain* SelectedChain() const;

  std::unique_ptr<cpu::Cpu> cpu_;
  cpu::StateRegistry registry_;
  scan::ScanChainSet chains_;
  scan::TapController tap_;
  scan::DebugUnit debug_;
  LinkConfig link_;
  util::Rng noise_;

  uint32_t chain_select_ = 0;
  uint32_t entry_ = 0;
  double extra_us_ = 0.0;  ///< op overheads accumulated
  bool use_fast_run_ = true;

  // Scratch buffers recycled across ReadScanChainInto calls.
  util::BitVec select_scratch_;
  util::BitVec shift_scratch_;
  util::BitVec zeros_scratch_;
};

}  // namespace goofi::testcard
