#include "db/value.hpp"

#include <cassert>
#include <cmath>
#include <functional>

#include "util/strings.hpp"

namespace goofi::db {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return "INTEGER";
    case ValueType::kReal:
      return "REAL";
    case ValueType::kText:
      return "TEXT";
  }
  return "?";
}

ValueType Value::type() const {
  switch (data_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kInt;
    case 2:
      return ValueType::kReal;
    default:
      return ValueType::kText;
  }
}

int64_t Value::as_int() const {
  assert(type() == ValueType::kInt);
  return std::get<int64_t>(data_);
}

double Value::as_real() const {
  if (type() == ValueType::kInt) return static_cast<double>(std::get<int64_t>(data_));
  assert(type() == ValueType::kReal);
  return std::get<double>(data_);
}

const std::string& Value::as_text() const {
  assert(type() == ValueType::kText);
  return std::get<std::string>(data_);
}

bool Value::Truthy() const {
  switch (type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt:
      return as_int() != 0;
    case ValueType::kReal:
      return as_real() != 0.0;
    case ValueType::kText:
      return !as_text().empty();
  }
  return false;
}

namespace {
int TypeRank(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt:
    case ValueType::kReal:
      return 1;  // numerics compare with each other
    case ValueType::kText:
      return 2;
  }
  return 3;
}
}  // namespace

int Value::Compare(const Value& other) const {
  const int rank_a = TypeRank(type());
  const int rank_b = TypeRank(other.type());
  if (rank_a != rank_b) return rank_a < rank_b ? -1 : 1;
  switch (rank_a) {
    case 0:
      return 0;  // NULL == NULL for ordering purposes
    case 1: {
      if (type() == ValueType::kInt && other.type() == ValueType::kInt) {
        const int64_t a = as_int();
        const int64_t b = other.as_int();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      const double a = as_real();
      const double b = other.as_real();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    default: {
      const int c = as_text().compare(other.as_text());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(as_int());
    case ValueType::kReal: {
      std::string s = util::Format("%.17g", as_real());
      return s;
    }
    case ValueType::kText:
      return as_text();
  }
  return "?";
}

std::string Value::Serialize() const {
  // Built as tag-then-append: `"I" + std::to_string(...)` trips GCC 12's
  // -Wrestrict false positive (PR105329) once the rvalue operator+ inlines.
  std::string out;
  switch (type()) {
    case ValueType::kNull:
      return "N";
    case ValueType::kInt:
      out = "I";
      out += std::to_string(as_int());
      return out;
    case ValueType::kReal:
      out = "R";
      out += util::Format("%.17g", as_real());
      return out;
    case ValueType::kText:
      out = "T";
      out += as_text();
      return out;
  }
  return "N";
}

util::Result<Value> Value::Deserialize(const std::string& text) {
  if (text.empty()) return util::ParseError("empty serialized value");
  const std::string payload = text.substr(1);
  switch (text[0]) {
    case 'N':
      return Value::Null();
    case 'I': {
      const auto v = util::ParseInt(payload);
      if (!v) return util::ParseError("bad int value: " + payload);
      return Value::Int(*v);
    }
    case 'R': {
      const auto v = util::ParseDouble(payload);
      if (!v) return util::ParseError("bad real value: " + payload);
      return Value::Real(*v);
    }
    case 'T':
      return Value::Text(payload);
    default:
      return util::ParseError("unknown value tag: " + text.substr(0, 1));
  }
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9E3779B9u;
    case ValueType::kInt:
      // Hash through the double representation: Compare treats INT and REAL
      // numerically (1 == 1.0), so equal-comparing values must hash equal
      // for the hash indexes, whose key equality is Compare-based.
      return std::hash<double>{}(static_cast<double>(as_int()));
    case ValueType::kReal:
      return std::hash<double>{}(as_real());
    case ValueType::kText:
      return std::hash<std::string>{}(as_text());
  }
  return 0;
}

}  // namespace goofi::db
