// Recursive-descent parser: token stream -> Statement AST.
#pragma once

#include <string>

#include "db/sql_ast.hpp"
#include "util/status.hpp"

namespace goofi::db {

/// Parses one SQL statement (a trailing ';' is allowed).
util::Result<Statement> ParseSql(const std::string& sql);

}  // namespace goofi::db
