// Tokenizer for the SQL dialect understood by the embedded database.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace goofi::db {

enum class TokenType {
  kIdent,   ///< identifiers and keywords (case-insensitive)
  kInt,     ///< integer literal
  kReal,    ///< floating literal
  kString,  ///< 'single quoted', '' escapes a quote
  kSymbol,  ///< punctuation / operators, canonical text in `text`
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     ///< identifier (original case), symbol, or string body
  int64_t int_value = 0;
  double real_value = 0.0;
  size_t offset = 0;    ///< byte offset in the source, for error messages

  bool IsKeyword(std::string_view keyword) const;
  bool IsSymbol(std::string_view symbol) const {
    return type == TokenType::kSymbol && text == symbol;
  }
};

/// Tokenizes `sql`. The result always ends with a kEnd token.
util::Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace goofi::db
