#include "db/sql_executor.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "db/sql_parser.hpp"
#include "util/strings.hpp"

namespace goofi::db {

namespace {

// ---------------------------------------------------------------------------
// Expression evaluation. `group` is non-null when evaluating in aggregate
// context; aggregate calls then fold over the group's member rows. Column
// resolution and `?` parameter binding live in the Resolver (query_plan.hpp),
// shared with the planner.
// ---------------------------------------------------------------------------

struct GroupContext {
  const std::vector<const Row*>* members = nullptr;
};

util::Result<Value> Eval(const Expr& expr, const Resolver& resolver,
                         const Row& row, const GroupContext* group);

util::Result<Value> EvalAggregate(const Expr& expr, const Resolver& resolver,
                                  const GroupContext& group) {
  const auto& members = *group.members;
  if (expr.func == "COUNT") {
    if (expr.star) return Value::Int(static_cast<int64_t>(members.size()));
    if (expr.args.size() != 1) return util::InvalidArgument("COUNT takes 1 arg");
    int64_t count = 0;
    for (const Row* member : members) {
      auto v = Eval(*expr.args[0], resolver, *member, nullptr);
      if (!v.ok()) return v;
      if (!v.value().is_null()) ++count;
    }
    return Value::Int(count);
  }
  if (expr.args.size() != 1) {
    return util::InvalidArgument(expr.func + " takes 1 arg");
  }
  bool any = false;
  bool all_int = true;
  double sum = 0.0;
  int64_t isum = 0;
  Value best;
  for (const Row* member : members) {
    auto v = Eval(*expr.args[0], resolver, *member, nullptr);
    if (!v.ok()) return v;
    const Value& value = v.value();
    if (value.is_null()) continue;
    if (value.type() == ValueType::kText &&
        (expr.func == "SUM" || expr.func == "AVG")) {
      return util::InvalidArgument(expr.func + " over TEXT column");
    }
    if (!any) {
      best = value;
    } else if (expr.func == "MIN") {
      if (value.Compare(best) < 0) best = value;
    } else if (expr.func == "MAX") {
      if (value.Compare(best) > 0) best = value;
    }
    if (value.type() != ValueType::kInt) all_int = false;
    if (value.type() == ValueType::kInt) {
      isum += value.as_int();
      sum += static_cast<double>(value.as_int());
    } else if (value.type() == ValueType::kReal) {
      sum += value.as_real();
    }
    any = true;
  }
  if (!any) return Value::Null();  // SQL: aggregates over empty input are NULL
  if (expr.func == "MIN" || expr.func == "MAX") return best;
  if (expr.func == "SUM") {
    return all_int ? Value::Int(isum) : Value::Real(sum);
  }
  // AVG
  return Value::Real(sum / static_cast<double>(members.size()));
}

util::Result<Value> EvalBinary(const Expr& expr, const Resolver& resolver,
                               const Row& row, const GroupContext* group) {
  // IS NULL / IS NOT NULL never propagate NULL.
  if (expr.op == "ISNULL" || expr.op == "ISNOTNULL") {
    auto v = Eval(*expr.args[0], resolver, row, group);
    if (!v.ok()) return v;
    const bool is_null = v.value().is_null();
    return Value::Bool(expr.op == "ISNULL" ? is_null : !is_null);
  }
  // AND/OR with SQL-ish short-circuit (NULL treated as false).
  if (expr.op == "AND" || expr.op == "OR") {
    auto lhs = Eval(*expr.args[0], resolver, row, group);
    if (!lhs.ok()) return lhs;
    const bool l = lhs.value().Truthy();
    if (expr.op == "AND" && !l) return Value::Bool(false);
    if (expr.op == "OR" && l) return Value::Bool(true);
    auto rhs = Eval(*expr.args[1], resolver, row, group);
    if (!rhs.ok()) return rhs;
    return Value::Bool(rhs.value().Truthy());
  }

  auto lhs = Eval(*expr.args[0], resolver, row, group);
  if (!lhs.ok()) return lhs;
  auto rhs = Eval(*expr.args[1], resolver, row, group);
  if (!rhs.ok()) return rhs;
  const Value& a = lhs.value();
  const Value& b = rhs.value();

  // Comparisons: NULL compared to anything is NULL (false in WHERE).
  static const char* const kCmps[] = {"=", "!=", "<", "<=", ">", ">="};
  for (const char* op : kCmps) {
    if (expr.op != op) continue;
    if (a.is_null() || b.is_null()) return Value::Null();
    const int c = a.Compare(b);
    bool result = false;
    if (expr.op == "=") result = c == 0;
    if (expr.op == "!=") result = c != 0;
    if (expr.op == "<") result = c < 0;
    if (expr.op == "<=") result = c <= 0;
    if (expr.op == ">") result = c > 0;
    if (expr.op == ">=") result = c >= 0;
    return Value::Bool(result);
  }

  // Arithmetic. NULL propagates. '+' on two TEXT values concatenates.
  if (a.is_null() || b.is_null()) return Value::Null();
  if (expr.op == "+" && a.type() == ValueType::kText &&
      b.type() == ValueType::kText) {
    return Value::Text(a.as_text() + b.as_text());
  }
  if (a.type() == ValueType::kText || b.type() == ValueType::kText) {
    return util::InvalidArgument("arithmetic on TEXT value");
  }
  const bool both_int =
      a.type() == ValueType::kInt && b.type() == ValueType::kInt;
  if (expr.op == "%") {
    if (!both_int) return util::InvalidArgument("% requires integers");
    if (b.as_int() == 0) return Value::Null();
    return Value::Int(a.as_int() % b.as_int());
  }
  if (both_int) {
    const int64_t x = a.as_int();
    const int64_t y = b.as_int();
    if (expr.op == "+") return Value::Int(x + y);
    if (expr.op == "-") return Value::Int(x - y);
    if (expr.op == "*") return Value::Int(x * y);
    if (expr.op == "/") return y == 0 ? Value::Null() : Value::Int(x / y);
  } else {
    const double x = a.as_real();
    const double y = b.as_real();
    if (expr.op == "+") return Value::Real(x + y);
    if (expr.op == "-") return Value::Real(x - y);
    if (expr.op == "*") return Value::Real(x * y);
    if (expr.op == "/") return y == 0.0 ? Value::Null() : Value::Real(x / y);
  }
  return util::Internal("unknown binary operator " + expr.op);
}

util::Result<Value> Eval(const Expr& expr, const Resolver& resolver,
                         const Row& row, const GroupContext* group) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal;
    case Expr::Kind::kParam:
      return resolver.Param(expr.param_index);
    case Expr::Kind::kColumn: {
      auto idx = resolver.Resolve(expr.qualifier, expr.column);
      if (!idx.ok()) return idx.status();
      return row[idx.value()];
    }
    case Expr::Kind::kUnary: {
      auto v = Eval(*expr.args[0], resolver, row, group);
      if (!v.ok()) return v;
      const Value& a = v.value();
      if (expr.op == "NOT") {
        if (a.is_null()) return Value::Null();
        return Value::Bool(!a.Truthy());
      }
      // NEG
      if (a.is_null()) return Value::Null();
      if (a.type() == ValueType::kInt) return Value::Int(-a.as_int());
      if (a.type() == ValueType::kReal) return Value::Real(-a.as_real());
      return util::InvalidArgument("unary minus on TEXT");
    }
    case Expr::Kind::kBinary:
      return EvalBinary(expr, resolver, row, group);
    case Expr::Kind::kCall: {
      if (expr.func == "ABS" || expr.func == "LENGTH") {
        if (expr.args.size() != 1) {
          return util::InvalidArgument(expr.func + " takes 1 arg");
        }
        auto v = Eval(*expr.args[0], resolver, row, group);
        if (!v.ok()) return v;
        const Value& a = v.value();
        if (a.is_null()) return Value::Null();
        if (expr.func == "ABS") {
          if (a.type() == ValueType::kInt) return Value::Int(std::abs(a.as_int()));
          if (a.type() == ValueType::kReal) return Value::Real(std::fabs(a.as_real()));
          return util::InvalidArgument("ABS on TEXT");
        }
        if (a.type() != ValueType::kText) {
          return util::InvalidArgument("LENGTH on non-TEXT");
        }
        return Value::Int(static_cast<int64_t>(a.as_text().size()));
      }
      // Aggregate.
      if (group == nullptr || group->members == nullptr) {
        return util::InvalidArgument("aggregate " + expr.func +
                                     " outside aggregate context");
      }
      return EvalAggregate(expr, resolver, *group);
    }
  }
  return util::Internal("bad expression kind");
}

// ---------------------------------------------------------------------------
// SELECT execution.
// ---------------------------------------------------------------------------

std::string DeriveItemName(const SelectItem& item, size_t index) {
  if (!item.alias.empty()) return item.alias;
  const Expr& e = *item.expr;
  if (e.kind == Expr::Kind::kColumn) return e.column;
  if (e.kind == Expr::Kind::kCall) {
    return e.func + "(" + (e.star ? "*" : (e.args.empty() ? "" : "...")) + ")";
  }
  return "expr" + std::to_string(index);
}

/// Candidate slots for the FROM table per the plan's base access, ascending.
/// nullopt requests a plain full scan (e.g. a probe expression failed to
/// evaluate — any real error then resurfaces through normal evaluation);
/// an empty vector means the probe proved there are no matches.
std::optional<std::vector<size_t>> GatherBaseSlots(const Table& table,
                                                   const IndexAccess& access,
                                                   const Resolver& resolver) {
  const Row no_row;
  auto eval_key = [&](const std::vector<const Expr*>& exprs)
      -> std::optional<Row> {
    Row key;
    key.reserve(exprs.size());
    for (const Expr* e : exprs) {
      auto v = Eval(*e, resolver, no_row, nullptr);
      if (!v.ok()) return std::nullopt;
      key.push_back(std::move(v).value());
    }
    return key;
  };
  auto has_null = [](const Row& key) {
    return std::any_of(key.begin(), key.end(),
                       [](const Value& v) { return v.is_null(); });
  };
  switch (access.kind) {
    case IndexAccess::Kind::kFullScan:
      return std::nullopt;
    case IndexAccess::Kind::kPrimaryKey: {
      const auto key = eval_key(access.eq_exprs);
      if (!key) return std::nullopt;
      // `col = NULL` is NULL, never true: provably empty.
      if (has_null(*key)) return std::vector<size_t>{};
      std::vector<size_t> slots;
      if (const auto slot = table.FindByPrimaryKey(*key)) slots.push_back(*slot);
      return slots;
    }
    case IndexAccess::Kind::kIndexEq: {
      const auto key = eval_key(access.eq_exprs);
      if (!key) return std::nullopt;
      if (has_null(*key)) return std::vector<size_t>{};
      return table.IndexEqualSlots(*access.index, *key);
    }
    case IndexAccess::Kind::kIndexRange: {
      Value lower_value;
      Value upper_value;
      const Value* lower = nullptr;
      const Value* upper = nullptr;
      if (access.lower != nullptr) {
        auto v = Eval(*access.lower, resolver, no_row, nullptr);
        if (!v.ok()) return std::nullopt;
        if (v.value().is_null()) return std::vector<size_t>{};  // col > NULL
        lower_value = std::move(v).value();
        lower = &lower_value;
      }
      if (access.upper != nullptr) {
        auto v = Eval(*access.upper, resolver, no_row, nullptr);
        if (!v.ok()) return std::nullopt;
        if (v.value().is_null()) return std::vector<size_t>{};
        upper_value = std::move(v).value();
        upper = &upper_value;
      }
      std::vector<size_t> slots =
          table.IndexRangeSlots(*access.index, lower, access.lower_inclusive,
                                upper, access.upper_inclusive);
      // The range walk yields key order; restore physical scan order.
      std::sort(slots.begin(), slots.end());
      return slots;
    }
    case IndexAccess::Kind::kIndexNull:
      return table.IndexEqualSlots(*access.index, Row{Value::Null()});
  }
  return std::nullopt;
}

util::Result<QueryResult> ExecuteSelect(Database& database,
                                        const SelectStmt& stmt,
                                        const ExecOptions& options,
                                        const SelectPlan* cached_plan) {
  const Table* from = database.GetTable(stmt.from_table);
  if (from == nullptr) return util::NotFound("no table " + stmt.from_table);

  Resolver resolver;
  resolver.SetParams(options.params);
  resolver.Bind(stmt.from_alias.empty() ? stmt.from_table : stmt.from_alias,
                from->schema());

  // Pick the plan: caller-cached, freshly planned, or (with indexes off) the
  // default plan, which is all full scans and nested loops.
  SelectPlan local_plan;
  local_plan.joins.resize(stmt.joins.size());
  const SelectPlan* plan = &local_plan;
  if (options.use_indexes) {
    if (cached_plan != nullptr) {
      plan = cached_plan;
    } else {
      local_plan = PlanSelect(database, stmt);
      plan = &local_plan;
    }
  }

  // Materialize the FROM table's candidate rows. Without joins, the WHERE
  // clause runs against rows in place so only matching rows are copied.
  const bool filter_in_place = stmt.where != nullptr && stmt.joins.empty();
  std::vector<Row> combined;
  {
    const std::vector<Row>& slots = from->slots();
    const std::vector<bool>& live = from->live();
    auto admit = [&](const Row& row) -> util::Result<bool> {
      if (!filter_in_place) return true;
      auto keep = Eval(*stmt.where, resolver, row, nullptr);
      if (!keep.ok()) return keep.status();
      return keep.value().Truthy();
    };
    const auto base_slots = GatherBaseSlots(*from, plan->base, resolver);
    if (base_slots) {
      combined.reserve(base_slots->size());
      for (const size_t slot : *base_slots) {
        auto keep = admit(slots[slot]);
        if (!keep.ok()) return keep.status();
        if (keep.value()) combined.push_back(slots[slot]);
      }
    } else {
      combined.reserve(from->size());
      for (size_t slot = 0; slot < slots.size(); ++slot) {
        if (!live[slot]) continue;
        auto keep = admit(slots[slot]);
        if (!keep.ok()) return keep.status();
        if (keep.value()) combined.push_back(slots[slot]);
      }
    }
  }

  // Join each JOIN clause in turn. Planned joins probe the right table's
  // PK/secondary index with key values from the left row and still evaluate
  // the full ON expression on every merged row; index matches arrive in
  // ascending slot order, so results are a byte-identical subsequence-ordered
  // match for the nested loop. A key-expression evaluation error falls back
  // to the nested loop so errors surface exactly as in a scan.
  for (size_t j = 0; j < stmt.joins.size(); ++j) {
    const JoinClause& join = stmt.joins[j];
    const Table* right = database.GetTable(join.table);
    if (right == nullptr) return util::NotFound("no table " + join.table);
    resolver.Bind(join.alias.empty() ? join.table : join.alias, right->schema());

    const std::vector<Row>& right_slots = right->slots();
    const std::vector<bool>& right_live = right->live();
    const size_t right_width = right->schema().num_columns();

    std::vector<Row> next;
    auto merge_and_filter = [&](const Row& left_row,
                                const Row& right_row) -> util::Status {
      Row merged;
      merged.reserve(left_row.size() + right_width);
      merged.insert(merged.end(), left_row.begin(), left_row.end());
      merged.insert(merged.end(), right_row.begin(), right_row.end());
      auto on = Eval(*join.on, resolver, merged, nullptr);
      if (!on.ok()) return on.status();
      if (on.value().Truthy()) next.push_back(std::move(merged));
      return util::Status::Ok();
    };
    auto run_nested_loop = [&]() -> util::Status {
      next.clear();
      for (const Row& left_row : combined) {
        for (size_t slot = 0; slot < right_slots.size(); ++slot) {
          if (!right_live[slot]) continue;
          GOOFI_RETURN_IF_ERROR(merge_and_filter(left_row, right_slots[slot]));
        }
      }
      return util::Status::Ok();
    };

    const JoinPlan fallback;
    const JoinPlan& jp = j < plan->joins.size() ? plan->joins[j] : fallback;
    if (jp.kind == JoinPlan::Kind::kNestedLoop) {
      GOOFI_RETURN_IF_ERROR(run_nested_loop());
    } else {
      bool fell_back = false;
      for (const Row& left_row : combined) {
        Row key;
        key.reserve(jp.outer_exprs.size());
        bool null_key = false;
        for (const Expr* e : jp.outer_exprs) {
          auto v = Eval(*e, resolver, left_row, nullptr);
          if (!v.ok()) {
            fell_back = true;
            break;
          }
          if (v.value().is_null()) {
            null_key = true;
            break;
          }
          key.push_back(std::move(v).value());
        }
        if (fell_back) break;
        if (null_key) continue;  // `col = NULL` never matches
        if (jp.kind == JoinPlan::Kind::kPrimaryKey) {
          if (const auto slot = right->FindByPrimaryKey(key)) {
            GOOFI_RETURN_IF_ERROR(merge_and_filter(left_row, right_slots[*slot]));
          }
        } else {
          for (const size_t slot : right->IndexEqualSlots(*jp.index, key)) {
            GOOFI_RETURN_IF_ERROR(merge_and_filter(left_row, right_slots[slot]));
          }
        }
      }
      if (fell_back) GOOFI_RETURN_IF_ERROR(run_nested_loop());
    }
    combined = std::move(next);
  }

  // WHERE (already applied in place when there are no joins).
  if (stmt.where != nullptr && !filter_in_place) {
    std::vector<Row> filtered;
    filtered.reserve(combined.size());
    for (Row& row : combined) {
      auto keep = Eval(*stmt.where, resolver, row, nullptr);
      if (!keep.ok()) return keep.status();
      if (keep.value().Truthy()) filtered.push_back(std::move(row));
    }
    combined = std::move(filtered);
  }

  const bool has_aggregate =
      !stmt.group_by.empty() ||
      std::any_of(stmt.items.begin(), stmt.items.end(), [](const SelectItem& i) {
        return i.expr && i.expr->ContainsAggregate();
      });

  QueryResult result;

  // Output column names.
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    const SelectItem& item = stmt.items[i];
    if (item.star) {
      if (has_aggregate) {
        return util::InvalidArgument("* not allowed in aggregate SELECT");
      }
      for (const TableBinding& b : resolver.bindings()) {
        for (const Column& col : b.schema->columns()) {
          result.columns.push_back(col.name);
        }
      }
    } else {
      result.columns.push_back(DeriveItemName(item, i));
    }
  }

  // Rows to sort and project: (sort keys, output row).
  struct OutRow {
    Row keys;
    Row values;
  };
  std::vector<OutRow> out_rows;

  if (!has_aggregate) {
    out_rows.reserve(combined.size());
    for (const Row& row : combined) {
      OutRow out;
      for (const SelectItem& item : stmt.items) {
        if (item.star) {
          out.values.insert(out.values.end(), row.begin(), row.end());
          continue;
        }
        auto v = Eval(*item.expr, resolver, row, nullptr);
        if (!v.ok()) return v.status();
        out.values.push_back(std::move(v).value());
      }
      for (const OrderItem& ord : stmt.order_by) {
        auto v = Eval(*ord.expr, resolver, row, nullptr);
        if (!v.ok()) return v.status();
        out.keys.push_back(std::move(v).value());
      }
      out_rows.push_back(std::move(out));
    }
  } else {
    // Group combined rows by the GROUP BY key (whole input is one group when
    // GROUP BY is absent).
    std::map<std::vector<std::string>, std::vector<const Row*>> groups;
    if (stmt.group_by.empty()) {
      auto& members = groups[{}];
      for (const Row& row : combined) members.push_back(&row);
    } else {
      for (const Row& row : combined) {
        std::vector<std::string> key;
        key.reserve(stmt.group_by.size());
        for (const ExprPtr& expr : stmt.group_by) {
          auto v = Eval(*expr, resolver, row, nullptr);
          if (!v.ok()) return v.status();
          key.push_back(v.value().Serialize());
        }
        groups[std::move(key)].push_back(&row);
      }
    }
    const Row empty_row;
    for (const auto& [key, members] : groups) {
      // A grouped query emits no row for an empty group, but an ungrouped
      // aggregate over zero input rows emits exactly one row (SUM -> NULL,
      // COUNT -> 0), matching standard SQL.
      if (members.empty() && !stmt.group_by.empty()) continue;
      GroupContext group;
      group.members = &members;
      // Non-aggregate expressions are evaluated on the group's first row
      // (valid when they are functionally dependent on the GROUP BY key,
      // which is how GOOFI's analysis queries use them).
      const Row& representative = members.empty() ? empty_row : *members.front();
      OutRow out;
      for (const SelectItem& item : stmt.items) {
        auto v = Eval(*item.expr, resolver, representative, &group);
        if (!v.ok()) return v.status();
        out.values.push_back(std::move(v).value());
      }
      for (const OrderItem& ord : stmt.order_by) {
        auto v = Eval(*ord.expr, resolver, representative, &group);
        if (!v.ok()) return v.status();
        out.keys.push_back(std::move(v).value());
      }
      out_rows.push_back(std::move(out));
    }
  }

  // ORDER BY.
  if (!stmt.order_by.empty()) {
    std::stable_sort(out_rows.begin(), out_rows.end(),
                     [&stmt](const OutRow& a, const OutRow& b) {
                       for (size_t i = 0; i < stmt.order_by.size(); ++i) {
                         const int c = a.keys[i].Compare(b.keys[i]);
                         if (c != 0) {
                           return stmt.order_by[i].descending ? c > 0 : c < 0;
                         }
                       }
                       return false;
                     });
  }

  // LIMIT + projection.
  size_t limit = out_rows.size();
  if (stmt.limit && static_cast<size_t>(*stmt.limit) < limit) {
    limit = static_cast<size_t>(*stmt.limit);
  }
  result.rows.reserve(limit);
  for (size_t i = 0; i < limit; ++i) {
    result.rows.push_back(std::move(out_rows[i].values));
  }
  result.affected = result.rows.size();
  return result;
}

// ---------------------------------------------------------------------------
// INSERT / UPDATE / DELETE / DDL.
// ---------------------------------------------------------------------------

util::Result<QueryResult> ExecuteInsert(Database& database,
                                        const InsertStmt& stmt,
                                        const ExecOptions& options) {
  Table* table = database.GetTable(stmt.table);
  if (table == nullptr) return util::NotFound("no table " + stmt.table);
  const Schema& schema = table->schema();

  // Map the statement's column order to schema positions.
  std::vector<size_t> positions;
  if (stmt.columns.empty()) {
    positions.resize(schema.num_columns());
    for (size_t i = 0; i < positions.size(); ++i) positions[i] = i;
  } else {
    for (const std::string& name : stmt.columns) {
      auto idx = schema.ColumnIndex(name);
      if (!idx) return util::NotFound("no column " + name + " in " + stmt.table);
      positions.push_back(*idx);
    }
  }

  Resolver empty_resolver;
  empty_resolver.SetParams(options.params);
  const Row no_row;
  QueryResult result;
  for (const auto& value_exprs : stmt.rows) {
    if (value_exprs.size() != positions.size()) {
      return util::InvalidArgument("VALUES arity mismatch");
    }
    Row row(schema.num_columns(), Value::Null());
    for (size_t i = 0; i < positions.size(); ++i) {
      auto v = Eval(*value_exprs[i], empty_resolver, no_row, nullptr);
      if (!v.ok()) return v.status();
      row[positions[i]] = std::move(v).value();
    }
    GOOFI_RETURN_IF_ERROR(database.Insert(stmt.table, std::move(row)));
    ++result.affected;
  }
  return result;
}

util::Result<QueryResult> ExecuteUpdate(Database& database,
                                        const UpdateStmt& stmt,
                                        const ExecOptions& options) {
  Table* table = database.GetTable(stmt.table);
  if (table == nullptr) return util::NotFound("no table " + stmt.table);
  const Schema& schema = table->schema();

  Resolver resolver;
  resolver.SetParams(options.params);
  resolver.Bind(stmt.table, schema);

  std::vector<std::pair<size_t, const Expr*>> sets;
  for (const auto& [name, expr] : stmt.assignments) {
    auto idx = schema.ColumnIndex(name);
    if (!idx) return util::NotFound("no column " + name + " in " + stmt.table);
    sets.emplace_back(*idx, expr.get());
  }

  util::Status eval_error = util::Status::Ok();
  auto predicate = [&](const Row& row) {
    if (!eval_error.ok()) return false;
    if (!stmt.where) return true;
    auto v = Eval(*stmt.where, resolver, row, nullptr);
    if (!v.ok()) {
      eval_error = v.status();
      return false;
    }
    return v.value().Truthy();
  };
  auto mutate = [&](Row& row) {
    if (!eval_error.ok()) return;
    const Row original = row;
    for (const auto& [idx, expr] : sets) {
      auto v = Eval(*expr, resolver, original, nullptr);
      if (!v.ok()) {
        eval_error = v.status();
        return;
      }
      row[idx] = std::move(v).value();
    }
  };
  size_t updated = 0;
  const util::Status st = table->UpdateWhere(predicate, mutate, &updated);
  GOOFI_RETURN_IF_ERROR(eval_error);
  GOOFI_RETURN_IF_ERROR(st);
  QueryResult result;
  result.affected = updated;
  return result;
}

util::Result<QueryResult> ExecuteDelete(Database& database,
                                        const DeleteStmt& stmt,
                                        const ExecOptions& options) {
  const Table* table = database.GetTable(stmt.table);
  if (table == nullptr) return util::NotFound("no table " + stmt.table);

  Resolver resolver;
  resolver.SetParams(options.params);
  resolver.Bind(stmt.table, table->schema());

  util::Status eval_error = util::Status::Ok();
  auto predicate = [&](const Row& row) {
    if (!eval_error.ok()) return false;
    if (!stmt.where) return true;
    auto v = Eval(*stmt.where, resolver, row, nullptr);
    if (!v.ok()) {
      eval_error = v.status();
      return false;
    }
    return v.value().Truthy();
  };
  size_t deleted = 0;
  const util::Status st = database.Delete(stmt.table, predicate, &deleted);
  GOOFI_RETURN_IF_ERROR(eval_error);
  GOOFI_RETURN_IF_ERROR(st);
  QueryResult result;
  result.affected = deleted;
  return result;
}

}  // namespace

std::optional<size_t> QueryResult::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (util::EqualsIgnoreCase(columns[i], name)) return i;
  }
  return std::nullopt;
}

std::string QueryResult::ToString() const {
  // Column widths.
  std::vector<size_t> widths(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) widths[i] = columns[i].size();
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows.size());
  for (const Row& row : rows) {
    std::vector<std::string> line;
    line.reserve(row.size());
    for (size_t i = 0; i < row.size(); ++i) {
      line.push_back(row[i].ToString());
      if (i < widths.size()) widths[i] = std::max(widths[i], line.back().size());
    }
    cells.push_back(std::move(line));
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& line) {
    for (size_t i = 0; i < line.size(); ++i) {
      out << (i == 0 ? "| " : " | ");
      out << line[i];
      const size_t w = i < widths.size() ? widths[i] : line[i].size();
      out << std::string(w - std::min(w, line[i].size()), ' ');
    }
    out << " |\n";
  };
  emit_row(columns);
  out << "|";
  for (size_t w : widths) out << std::string(w + 2, '-') << "|";
  out << "\n";
  for (const auto& line : cells) emit_row(line);
  return out.str();
}

util::Result<QueryResult> ExecuteStatement(Database& database,
                                           const Statement& statement,
                                           const ExecOptions& options,
                                           const SelectPlan* select_plan) {
  return std::visit(
      [&](const auto& stmt) -> util::Result<QueryResult> {
        using T = std::decay_t<decltype(stmt)>;
        if constexpr (std::is_same_v<T, SelectStmt>) {
          return ExecuteSelect(database, stmt, options, select_plan);
        } else if constexpr (std::is_same_v<T, InsertStmt>) {
          return ExecuteInsert(database, stmt, options);
        } else if constexpr (std::is_same_v<T, UpdateStmt>) {
          return ExecuteUpdate(database, stmt, options);
        } else if constexpr (std::is_same_v<T, DeleteStmt>) {
          return ExecuteDelete(database, stmt, options);
        } else if constexpr (std::is_same_v<T, CreateTableStmt>) {
          QueryResult result;
          GOOFI_RETURN_IF_ERROR(database.CreateTable(stmt.schema));
          return result;
        } else if constexpr (std::is_same_v<T, DropTableStmt>) {
          QueryResult result;
          GOOFI_RETURN_IF_ERROR(database.DropTable(stmt.table));
          return result;
        } else if constexpr (std::is_same_v<T, CreateIndexStmt>) {
          // One key column gets a sorted index (equality + range probes);
          // composite keys hash.
          QueryResult result;
          const IndexKind kind = stmt.columns.size() == 1 ? IndexKind::kSorted
                                                          : IndexKind::kHash;
          GOOFI_RETURN_IF_ERROR(database.CreateIndex(stmt.table, stmt.index_name,
                                                     stmt.columns, kind));
          return result;
        } else {
          static_assert(std::is_same_v<T, DropIndexStmt>);
          QueryResult result;
          GOOFI_RETURN_IF_ERROR(database.DropIndex(stmt.table, stmt.index_name));
          return result;
        }
      },
      statement);
}

util::Result<QueryResult> ExecuteStatement(Database& database,
                                           const Statement& statement) {
  return ExecuteStatement(database, statement, ExecOptions{});
}

util::Result<QueryResult> ExecuteSql(Database& database, const std::string& sql,
                                     const ExecOptions& options) {
  auto stmt = ParseSql(sql);
  if (!stmt.ok()) return stmt.status();
  return ExecuteStatement(database, stmt.value(), options);
}

util::Result<QueryResult> ExecuteSql(Database& database, const std::string& sql) {
  return ExecuteSql(database, sql, ExecOptions{});
}

util::Result<std::string> ExplainSql(Database& database, const std::string& sql) {
  auto stmt = ParseSql(sql);
  if (!stmt.ok()) return stmt.status();
  const auto* select = std::get_if<SelectStmt>(&stmt.value());
  if (select == nullptr) {
    return std::string("(no plan: only SELECT statements are planned)\n");
  }
  const SelectPlan plan = PlanSelect(database, *select);
  return DescribePlan(database, *select, plan);
}

}  // namespace goofi::db
