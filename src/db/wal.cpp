#include "db/wal.hpp"

#include <bit>
#include <cassert>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "db/database.hpp"
#include "util/crc32.hpp"

namespace goofi::db {

// --- packed encoding primitives ---------------------------------------------

void PackedWriter::U32(uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out_->append(bytes, 4);
}

void PackedWriter::U64(uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out_->append(bytes, 8);
}

void PackedWriter::Varint(uint64_t v) {
  while (v >= 0x80) {
    out_->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out_->push_back(static_cast<char>(v));
}

void PackedWriter::SVarint(int64_t v) {
  // Zigzag: small magnitudes of either sign stay short.
  Varint((static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63));
}

void PackedWriter::Str(std::string_view s) {
  Varint(s.size());
  out_->append(s.data(), s.size());
}

void PackedWriter::Val(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      U8(0);
      break;
    case ValueType::kInt:
      U8(1);
      SVarint(v.as_int());
      break;
    case ValueType::kReal:
      U8(2);
      U64(std::bit_cast<uint64_t>(v.as_real()));
      break;
    case ValueType::kText:
      U8(3);
      Str(v.as_text());
      break;
  }
}

void PackedWriter::RowData(const Row& row) {
  Varint(row.size());
  for (const Value& v : row) Val(v);
}

bool PackedReader::Skip(size_t n) {
  if (n > data_.size() - pos_) return Fail();
  pos_ += n;
  return true;
}

bool PackedReader::U8(uint8_t* v) {
  if (pos_ + 1 > data_.size()) return Fail();
  *v = static_cast<uint8_t>(data_[pos_++]);
  return true;
}

bool PackedReader::U32(uint32_t* v) {
  if (pos_ + 4 > data_.size()) return Fail();
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return true;
}

bool PackedReader::U64(uint64_t* v) {
  if (pos_ + 8 > data_.size()) return Fail();
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return true;
}

bool PackedReader::Varint(uint64_t* v) {
  uint64_t out = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos_ >= data_.size()) return Fail();
    const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    out |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      // The 10th byte (shift 63) may only carry one payload bit.
      if (shift == 63 && byte > 1) return Fail();
      *v = out;
      return true;
    }
  }
  return Fail();  // unterminated varint
}

bool PackedReader::SVarint(int64_t* v) {
  uint64_t raw = 0;
  if (!Varint(&raw)) return false;
  *v = static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
  return true;
}

bool PackedReader::Str(std::string* s) {
  uint64_t len = 0;
  if (!Varint(&len)) return false;
  if (len > data_.size() - pos_) return Fail();
  s->assign(data_.data() + pos_, static_cast<size_t>(len));
  pos_ += static_cast<size_t>(len);
  return true;
}

bool PackedReader::Val(Value* v) {
  uint8_t tag = 0;
  if (!U8(&tag)) return false;
  switch (tag) {
    case 0:
      *v = Value::Null();
      return true;
    case 1: {
      int64_t i = 0;
      if (!SVarint(&i)) return false;
      *v = Value::Int(i);
      return true;
    }
    case 2: {
      uint64_t bits = 0;
      if (!U64(&bits)) return false;
      *v = Value::Real(std::bit_cast<double>(bits));
      return true;
    }
    case 3: {
      std::string s;
      if (!Str(&s)) return false;
      *v = Value::Text(std::move(s));
      return true;
    }
    default:
      return Fail();
  }
}

bool PackedReader::RowData(Row* row) {
  uint64_t arity = 0;
  if (!Varint(&arity)) return false;
  // A row can't have more values than one byte each of remaining input.
  if (arity > data_.size() - pos_ + 1) return Fail();
  row->clear();
  row->reserve(static_cast<size_t>(arity));
  for (uint64_t i = 0; i < arity; ++i) {
    Value v;
    if (!Val(&v)) return false;
    row->push_back(std::move(v));
  }
  return true;
}

void EncodeSchema(PackedWriter* w, const Schema& schema) {
  w->Str(schema.table_name());
  w->Varint(schema.columns().size());
  for (const Column& col : schema.columns()) {
    w->Str(col.name);
    w->U8(static_cast<uint8_t>(col.type));
    w->U8(col.not_null ? 1 : 0);
  }
  w->Varint(schema.primary_key().size());
  for (const std::string& col : schema.primary_key()) w->Str(col);
  w->Varint(schema.foreign_keys().size());
  for (const ForeignKey& fk : schema.foreign_keys()) {
    w->Str(fk.ref_table);
    w->Varint(fk.local_columns.size());
    for (const std::string& col : fk.local_columns) w->Str(col);
    for (const std::string& col : fk.ref_columns) w->Str(col);
  }
}

bool DecodeSchema(PackedReader* r, Schema* out) {
  std::string name;
  uint64_t ncols = 0;
  if (!r->Str(&name) || !r->Varint(&ncols)) return false;
  std::vector<Column> columns;
  columns.reserve(static_cast<size_t>(ncols));
  for (uint64_t i = 0; i < ncols; ++i) {
    Column col;
    uint8_t type = 0, not_null = 0;
    if (!r->Str(&col.name) || !r->U8(&type) || !r->U8(&not_null)) return false;
    if (type > static_cast<uint8_t>(ValueType::kText)) return false;
    col.type = static_cast<ValueType>(type);
    col.not_null = not_null != 0;
    columns.push_back(std::move(col));
  }
  uint64_t npk = 0;
  if (!r->Varint(&npk)) return false;
  std::vector<std::string> primary_key(static_cast<size_t>(npk));
  for (auto& col : primary_key) {
    if (!r->Str(&col)) return false;
  }
  uint64_t nfk = 0;
  if (!r->Varint(&nfk)) return false;
  std::vector<ForeignKey> fks;
  fks.reserve(static_cast<size_t>(nfk));
  for (uint64_t i = 0; i < nfk; ++i) {
    ForeignKey fk;
    uint64_t n = 0;
    if (!r->Str(&fk.ref_table) || !r->Varint(&n)) return false;
    fk.local_columns.resize(static_cast<size_t>(n));
    fk.ref_columns.resize(static_cast<size_t>(n));
    for (auto& col : fk.local_columns) {
      if (!r->Str(&col)) return false;
    }
    for (auto& col : fk.ref_columns) {
      if (!r->Str(&col)) return false;
    }
    fks.push_back(std::move(fk));
  }
  *out = Schema(std::move(name), std::move(columns), std::move(primary_key),
                std::move(fks));
  return true;
}

// --- WAL replay --------------------------------------------------------------

namespace {

constexpr char kWalMagic[4] = {'G', 'W', 'A', 'L'};
constexpr uint8_t kWalVersion = 1;
constexpr size_t kWalHeaderSize = 13;   // magic + version + epoch
constexpr size_t kRecordFrameSize = 8;  // payload_len + crc

util::Status BadRecord(const std::string& what) {
  return util::ParseError("WAL record: " + what);
}

/// Deletes the first live row equal to `image` (full-row Compare equality —
/// the same first-match rule the writer's row images were produced under, so
/// replay removes the physically-same slot).
util::Status ReplayDeleteOne(Table* table, const Row& image) {
  bool done = false;
  const size_t n = table->DeleteWhere([&](const Row& row) {
    if (done || !KeyEq{}(row, image)) return false;
    done = true;
    return true;
  });
  if (n != 1) {
    return util::Internal("WAL delete replay found no matching row in " +
                          table->schema().table_name());
  }
  return util::Status::Ok();
}

util::Status ReplayUpdateOne(Table* table, const Row& old_row, Row new_row) {
  bool done = false;
  size_t updated = 0;
  GOOFI_RETURN_IF_ERROR(table->UpdateWhere(
      [&](const Row& row) {
        if (done || !KeyEq{}(row, old_row)) return false;
        done = true;
        return true;
      },
      [&](Row& row) { row = new_row; }, &updated));
  if (updated != 1) {
    return util::Internal("WAL update replay found no matching row in " +
                          table->schema().table_name());
  }
  return util::Status::Ok();
}

}  // namespace

util::Status ApplyWalRecord(Database* db, WalOp op, PackedReader* r) {
  auto table_of = [db](const std::string& name) -> util::Result<Table*> {
    Table* table = db->GetTable(name);
    if (table == nullptr) {
      return util::Internal("WAL references missing table " + name);
    }
    return table;
  };
  switch (op) {
    case WalOp::kInsert: {
      std::string name;
      Row row;
      if (!r->Str(&name) || !r->RowData(&row)) return BadRecord("bad insert");
      auto table = table_of(name);
      if (!table.ok()) return table.status();
      return table.value()->Insert(std::move(row));
    }
    case WalOp::kInsertBatch: {
      std::string name;
      uint64_t n = 0;
      if (!r->Str(&name) || !r->Varint(&n)) return BadRecord("bad batch");
      auto table = table_of(name);
      if (!table.ok()) return table.status();
      table.value()->Reserve(table.value()->slots().size() +
                             static_cast<size_t>(n));
      for (uint64_t i = 0; i < n; ++i) {
        Row row;
        if (!r->RowData(&row)) return BadRecord("bad batch row");
        GOOFI_RETURN_IF_ERROR(table.value()->Insert(std::move(row)));
      }
      return util::Status::Ok();
    }
    case WalOp::kDelete: {
      std::string name;
      uint64_t n = 0;
      if (!r->Str(&name) || !r->Varint(&n)) return BadRecord("bad delete");
      auto table = table_of(name);
      if (!table.ok()) return table.status();
      for (uint64_t i = 0; i < n; ++i) {
        Row image;
        if (!r->RowData(&image)) return BadRecord("bad delete image");
        GOOFI_RETURN_IF_ERROR(ReplayDeleteOne(table.value(), image));
      }
      return util::Status::Ok();
    }
    case WalOp::kUpdate: {
      std::string name;
      uint64_t n = 0;
      if (!r->Str(&name) || !r->Varint(&n)) return BadRecord("bad update");
      auto table = table_of(name);
      if (!table.ok()) return table.status();
      for (uint64_t i = 0; i < n; ++i) {
        Row old_row, new_row;
        if (!r->RowData(&old_row) || !r->RowData(&new_row)) {
          return BadRecord("bad update pair");
        }
        GOOFI_RETURN_IF_ERROR(
            ReplayUpdateOne(table.value(), old_row, std::move(new_row)));
      }
      return util::Status::Ok();
    }
    case WalOp::kCreateTable: {
      Schema schema;
      if (!DecodeSchema(r, &schema)) return BadRecord("bad schema");
      return db->CreateTable(std::move(schema));
    }
    case WalOp::kDropTable: {
      std::string name;
      if (!r->Str(&name)) return BadRecord("bad drop table");
      return db->DropTable(name);
    }
    case WalOp::kCreateIndex: {
      std::string table, name;
      uint64_t n = 0;
      if (!r->Str(&table) || !r->Str(&name) || !r->Varint(&n)) {
        return BadRecord("bad create index");
      }
      std::vector<std::string> columns(static_cast<size_t>(n));
      for (auto& col : columns) {
        if (!r->Str(&col)) return BadRecord("bad index column");
      }
      uint8_t kind = 0;
      if (!r->U8(&kind) || kind > static_cast<uint8_t>(IndexKind::kSorted)) {
        return BadRecord("bad index kind");
      }
      return db->CreateIndex(table, name, columns,
                             static_cast<IndexKind>(kind));
    }
    case WalOp::kDropIndex: {
      std::string table, name;
      if (!r->Str(&table) || !r->Str(&name)) return BadRecord("bad drop index");
      return db->DropIndex(table, name);
    }
  }
  return BadRecord("unknown op " + std::to_string(static_cast<int>(op)));
}

// --- WAL file ----------------------------------------------------------------

util::Status Wal::WriteFreshHeader(uint64_t epoch) {
  if (out_.is_open()) out_.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  if (!out) return util::IoError("cannot open " + path_ + " for writing");
  std::string header;
  PackedWriter w(&header);
  header.append(kWalMagic, sizeof(kWalMagic));
  w.U8(kWalVersion);
  w.U64(epoch);
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.flush();
  if (!out) return util::IoError("write failed for " + path_);
  out.close();
  bytes_ = header.size();
  next_sequence_ = 1;
  pending_.clear();
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) return util::IoError("cannot reopen " + path_);
  return util::Status::Ok();
}

util::Result<Wal::OpenResult> Wal::Open(const std::string& path, uint64_t epoch,
                                        Database* db) {
  path_ = path;
  OpenResult result;

  std::string content;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      content = buf.str();
    }
  }

  bool fresh = content.empty();
  if (!fresh) {
    // Header sanity: wrong magic/version means this was never a WAL of ours
    // (or a crash died inside the 13 header bytes); epoch mismatch means the
    // records are already folded into a newer snapshot. Either way the file
    // is reset — no record in it is both valid and unapplied.
    bool stale = false;
    if (content.size() < kWalHeaderSize ||
        std::memcmp(content.data(), kWalMagic, sizeof(kWalMagic)) != 0 ||
        static_cast<uint8_t>(content[4]) != kWalVersion) {
      stale = true;
    } else {
      PackedReader header(std::string_view(content).substr(5, 8));
      uint64_t file_epoch = 0;
      header.U64(&file_epoch);
      stale = file_epoch != epoch;
    }
    if (stale) {
      result.stale_discarded = true;
      fresh = true;
    }
  }
  if (fresh) {
    GOOFI_RETURN_IF_ERROR(WriteFreshHeader(epoch));
    return result;
  }

  // Replay records until the first torn one.
  const std::string_view data = content;
  size_t pos = kWalHeaderSize;
  uint64_t expect_sequence = 1;
  while (pos < data.size()) {
    size_t record_end = 0;
    bool valid = false;
    if (data.size() - pos >= kRecordFrameSize) {
      PackedReader frame(data.substr(pos, kRecordFrameSize));
      uint32_t payload_len = 0, stored_crc = 0;
      frame.U32(&payload_len);
      frame.U32(&stored_crc);
      if (payload_len >= 2 &&
          payload_len <= data.size() - pos - kRecordFrameSize) {
        const std::string_view payload =
            data.substr(pos + kRecordFrameSize, payload_len);
        if (util::Crc32Of(payload) == stored_crc) {
          PackedReader body(payload);
          uint64_t sequence = 0;
          uint8_t op = 0;
          if (body.Varint(&sequence) && body.U8(&op) &&
              sequence == expect_sequence) {
            const util::Status applied =
                ApplyWalRecord(db, static_cast<WalOp>(op), &body);
            // A CRC-valid record that fails to apply is not a torn tail —
            // the snapshot/WAL pair is inconsistent; refuse the archive.
            if (!applied.ok()) return applied;
            if (!body.ok() || !body.AtEnd()) {
              return util::ParseError("WAL record with trailing garbage");
            }
            valid = true;
            record_end = pos + kRecordFrameSize + payload_len;
          }
        }
      }
    }
    if (!valid) break;
    pos = record_end;
    ++expect_sequence;
    ++result.records_replayed;
  }

  if (pos < data.size()) {
    result.torn_tail = true;
    result.bytes_truncated = data.size() - pos;
    std::error_code ec;
    std::filesystem::resize_file(path_, pos, ec);
    if (ec) {
      return util::IoError("cannot truncate torn WAL tail of " + path_ + ": " +
                           ec.message());
    }
  }

  bytes_ = pos;
  next_sequence_ = expect_sequence;
  pending_.clear();
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) return util::IoError("cannot reopen " + path_);
  return result;
}

void Wal::Append(WalOp op, std::string_view body) {
  assert(out_.is_open());
  std::string payload;
  payload.reserve(body.size() + 11);
  PackedWriter w(&payload);
  w.Varint(next_sequence_++);
  w.U8(static_cast<uint8_t>(op));
  payload.append(body.data(), body.size());

  PackedWriter frame(&pending_);
  frame.U32(static_cast<uint32_t>(payload.size()));
  frame.U32(util::Crc32Of(payload));
  pending_.append(payload);
  ++records_appended_;
}

util::Status Wal::Flush() {
  if (pending_.empty()) return util::Status::Ok();
  if (!out_.is_open()) return util::IoError("WAL " + path_ + " is not open");
  out_.write(pending_.data(), static_cast<std::streamsize>(pending_.size()));
  out_.flush();
  if (!out_) return util::IoError("WAL append failed for " + path_);
  bytes_ += pending_.size();
  pending_.clear();
  return util::Status::Ok();
}

util::Status Wal::Reset(uint64_t epoch) { return WriteFreshHeader(epoch); }

}  // namespace goofi::db
