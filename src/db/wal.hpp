// Append-only write-ahead log for the campaign archive, plus the packed
// binary encoding primitives it shares with the columnar snapshot
// (db/archive).
//
// On-disk layout:
//
//   header: "GWAL" <u8 version=1> <u64 epoch LE>            (13 bytes)
//   record: <u32 payload_len LE> <u32 crc32(payload) LE> <payload>
//   payload: <varint sequence> <u8 op> <op-specific body>
//
// Records carry whole logical operations (insert/update/delete batches and
// DDL), so replaying a WAL on top of the snapshot it extends reproduces the
// in-memory database byte-for-byte, row order included. Recovery rules:
//
//  - the WAL's epoch must equal the snapshot's epoch. A mismatch means the
//    WAL predates the current snapshot (a crash hit between Checkpoint's
//    snapshot rename and WAL reset); its records are already folded in, so
//    the whole file is discarded.
//  - sequences start at 1 per epoch and must be contiguous; the file is
//    physically truncated at the first record whose length, CRC or sequence
//    fails — a torn tail from a crash mid-append loses only that record.
//
// Appends are buffered in memory and made durable by Flush() — the group
// commit primitive: one write + flush covers every record appended since the
// previous flush (a campaign runner's whole result batch).
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "db/table.hpp"
#include "util/status.hpp"

namespace goofi::db {

class Database;

// --- packed encoding primitives ---------------------------------------------

/// Appends packed fields to an external buffer (reusable across segments).
class PackedWriter {
 public:
  explicit PackedWriter(std::string* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U32(uint32_t v);  ///< fixed 4 bytes, little-endian
  void U64(uint64_t v);  ///< fixed 8 bytes, little-endian
  void Varint(uint64_t v);
  void SVarint(int64_t v);  ///< zigzag + varint
  void Str(std::string_view s);  ///< varint length + raw bytes
  /// One cell: type tag byte (0 NULL, 1 INT, 2 REAL, 3 TEXT) + payload
  /// (SVarint / IEEE-754 bits / Str). INTs stored in REAL columns keep their
  /// tag, so a round trip preserves the concrete runtime type.
  void Val(const Value& v);
  void RowData(const Row& row);  ///< varint arity + values

 private:
  std::string* out_;
};

/// Bounds-checked reader over a packed byte range. All reads return false
/// (and latch !ok()) on underflow or malformed data.
class PackedReader {
 public:
  explicit PackedReader(std::string_view data) : data_(data) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t pos() const { return pos_; }

  bool Skip(size_t n);
  bool U8(uint8_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool Varint(uint64_t* v);
  bool SVarint(int64_t* v);
  bool Str(std::string* s);
  bool Val(Value* v);
  bool RowData(Row* row);

 private:
  bool Fail() {
    ok_ = false;
    return false;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Schema encoding shared by snapshot and WAL kCreateTable records: name,
/// columns (name/type/not-null), primary key, foreign keys.
void EncodeSchema(PackedWriter* w, const Schema& schema);
bool DecodeSchema(PackedReader* r, Schema* out);

// --- WAL ---------------------------------------------------------------------

enum class WalOp : uint8_t {
  kInsert = 1,       ///< <table> <row>
  kInsertBatch = 2,  ///< <table> <n> <row>*n
  kDelete = 3,       ///< <table> <n> <full row image>*n
  kUpdate = 4,       ///< <table> <n> (<old row> <new row>)*n
  kCreateTable = 5,  ///< <schema>
  kDropTable = 6,    ///< <table>
  kCreateIndex = 7,  ///< <table> <name> <n> <column name>*n <u8 kind>
  kDropIndex = 8,    ///< <table> <name>
};

/// Applies one decoded record body to `db`. Row-level ops bypass FK
/// re-validation (like snapshot loading: the data passed the checks when
/// first written, and replay order preserves referential consistency).
util::Status ApplyWalRecord(Database* db, WalOp op, PackedReader* r);

class Wal {
 public:
  struct OpenResult {
    uint64_t records_replayed = 0;
    uint64_t bytes_truncated = 0;   ///< torn/corrupt tail dropped
    bool torn_tail = false;
    bool stale_discarded = false;   ///< epoch mismatch: whole file reset
  };

  /// Opens (or creates) the WAL at `path` for snapshot epoch `epoch`,
  /// replaying every valid record into `db` and truncating the file at the
  /// first torn one. After Open the writer appends at the recovered end with
  /// the next contiguous sequence number.
  util::Result<OpenResult> Open(const std::string& path, uint64_t epoch,
                                Database* db);

  /// Buffers one record. Durable only after the next Flush().
  void Append(WalOp op, std::string_view body);

  /// Group commit: writes and flushes everything appended since the last
  /// Flush. No-op on an empty buffer.
  util::Status Flush();

  /// Discards the buffer and truncates the file to a fresh header for
  /// `epoch` (checkpoint fold: the records' effects now live in the
  /// snapshot).
  util::Status Reset(uint64_t epoch);

  /// Durable file size in bytes (header included).
  uint64_t bytes() const { return bytes_; }
  uint64_t pending_bytes() const { return pending_.size(); }
  uint64_t records_appended() const { return records_appended_; }

 private:
  util::Status WriteFreshHeader(uint64_t epoch);

  std::string path_;
  std::ofstream out_;
  std::string pending_;
  uint64_t next_sequence_ = 1;
  uint64_t bytes_ = 0;
  uint64_t records_appended_ = 0;
};

}  // namespace goofi::db
