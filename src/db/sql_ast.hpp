// Abstract syntax tree for the SQL dialect.
//
// Supported statements: CREATE TABLE, DROP TABLE, INSERT, SELECT (with JOIN,
// WHERE, GROUP BY, ORDER BY, LIMIT, aggregates), UPDATE, DELETE. This covers
// the analysis queries the paper expects users to write against
// LoggedSystemState (§3.4) and everything the tool itself needs.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "db/schema.hpp"

namespace goofi::db {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind {
    kLiteral,  ///< `literal`
    kColumn,   ///< [qualifier.]column
    kParam,    ///< `?` placeholder, bound at execution time
    kUnary,    ///< op(args[0]); op in {NOT, NEG}
    kBinary,   ///< op(args[0], args[1]); comparisons, AND/OR, arithmetic
    kCall,     ///< func(args...) or COUNT(*) when star
  };

  Kind kind = Kind::kLiteral;
  Value literal;
  std::string qualifier;  ///< table name or alias; empty if unqualified
  std::string column;
  std::string op;    ///< canonical: NOT NEG AND OR = != < <= > >= + - * / %
  std::string func;  ///< uppercase: COUNT SUM AVG MIN MAX ABS LENGTH
  bool star = false; ///< COUNT(*)
  size_t param_index = 0;  ///< ordinal of a kParam, left to right from 0
  std::vector<ExprPtr> args;

  static ExprPtr Literal(Value v) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kLiteral;
    e->literal = std::move(v);
    return e;
  }
  static ExprPtr Column(std::string qualifier, std::string column) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kColumn;
    e->qualifier = std::move(qualifier);
    e->column = std::move(column);
    return e;
  }
  static ExprPtr Unary(std::string op, ExprPtr arg) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kUnary;
    e->op = std::move(op);
    e->args.push_back(std::move(arg));
    return e;
  }
  static ExprPtr Binary(std::string op, ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kBinary;
    e->op = std::move(op);
    e->args.push_back(std::move(lhs));
    e->args.push_back(std::move(rhs));
    return e;
  }
  static ExprPtr Param(size_t index) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kParam;
    e->param_index = index;
    return e;
  }

  /// True if this expression (recursively) contains an aggregate call.
  bool ContainsAggregate() const;

  /// Number of `?` placeholders in this expression (recursively).
  size_t CountParams() const;
};

struct SelectItem {
  ExprPtr expr;        ///< null when star
  std::string alias;   ///< output column name; derived if empty
  bool star = false;   ///< bare `*`
};

struct JoinClause {
  std::string table;
  std::string alias;  ///< empty = table name
  ExprPtr on;
};

struct OrderItem {
  ExprPtr expr;
  bool descending = false;
};

struct SelectStmt {
  std::vector<SelectItem> items;
  std::string from_table;
  std::string from_alias;
  std::vector<JoinClause> joins;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;          ///< empty = schema order
  std::vector<std::vector<ExprPtr>> rows;    ///< constant expressions
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;
};

struct CreateTableStmt {
  Schema schema;
};

struct DropTableStmt {
  std::string table;
};

/// `CREATE INDEX name ON table (col, ...)`. One column builds a sorted index
/// (equality + range probes); several build a hash index (equality only).
struct CreateIndexStmt {
  std::string index_name;
  std::string table;
  std::vector<std::string> columns;
};

struct DropIndexStmt {
  std::string index_name;
  std::string table;
};

using Statement =
    std::variant<SelectStmt, InsertStmt, UpdateStmt, DeleteStmt,
                 CreateTableStmt, DropTableStmt, CreateIndexStmt,
                 DropIndexStmt>;

/// Number of `?` placeholders in the statement, in binding order.
size_t CountStatementParams(const Statement& statement);

}  // namespace goofi::db
