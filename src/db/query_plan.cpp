#include "db/query_plan.hpp"

#include <algorithm>
#include <sstream>

namespace goofi::db {

namespace {

/// True when every column reference in `expr` resolves. The planner only
/// routes through an index when the whole predicate is well-formed;
/// otherwise an index probe that yields no candidates would silently
/// swallow the "unknown column" error a scan reports.
bool ColumnsResolve(const Expr& expr, const Resolver& resolver) {
  if (expr.kind == Expr::Kind::kColumn) {
    return resolver.Resolve(expr.qualifier, expr.column).ok();
  }
  for (const ExprPtr& arg : expr.args) {
    if (!ColumnsResolve(*arg, resolver)) return false;
  }
  return true;
}

/// True when `expr` is row-independent: no column references, no
/// aggregates. Literals, params, arithmetic and scalar functions over them
/// qualify — they can be evaluated once, before the probe.
bool IsRowFree(const Expr& expr) {
  if (expr.kind == Expr::Kind::kColumn) return false;
  if (expr.kind == Expr::Kind::kCall && expr.ContainsAggregate()) return false;
  for (const ExprPtr& arg : expr.args) {
    if (!IsRowFree(*arg)) return false;
  }
  return true;
}

/// True when every column in `expr` resolves to an offset below `limit`
/// (i.e. references only the tables bound before the join being planned).
bool ColumnsBelow(const Expr& expr, const Resolver& resolver, size_t limit) {
  if (expr.kind == Expr::Kind::kColumn) {
    const auto idx = resolver.Resolve(expr.qualifier, expr.column);
    return idx.ok() && idx.value() < limit;
  }
  if (expr.ContainsAggregate()) return false;
  for (const ExprPtr& arg : expr.args) {
    if (!ColumnsBelow(*arg, resolver, limit)) return false;
  }
  return true;
}

/// Splits nested top-level ANDs into individual conjuncts.
void CollectConjuncts(const Expr* expr, std::vector<const Expr*>* out) {
  if (expr->kind == Expr::Kind::kBinary && expr->op == "AND") {
    CollectConjuncts(expr->args[0].get(), out);
    CollectConjuncts(expr->args[1].get(), out);
    return;
  }
  out->push_back(expr);
}

/// A sargable conjunct on one column of the planned table:
/// `col op <row-free expr>` or `col IS NULL`.
struct Sarg {
  size_t column = 0;        ///< column index within the planned table
  std::string op;           ///< = < <= > >= ISNULL
  const Expr* value = nullptr;  ///< null for ISNULL
};

/// Matches `conjunct` against the binding at [offset, offset + width);
/// flips the comparison when the column is on the right-hand side.
std::optional<Sarg> MatchSarg(const Expr& conjunct, const Resolver& resolver,
                              size_t offset, size_t width) {
  if (conjunct.kind != Expr::Kind::kBinary) return std::nullopt;
  auto column_of = [&](const Expr& e) -> std::optional<size_t> {
    if (e.kind != Expr::Kind::kColumn) return std::nullopt;
    const auto idx = resolver.Resolve(e.qualifier, e.column);
    if (!idx.ok() || idx.value() < offset || idx.value() >= offset + width) {
      return std::nullopt;
    }
    return idx.value() - offset;
  };
  if (conjunct.op == "ISNULL") {
    const auto col = column_of(*conjunct.args[0]);
    if (!col) return std::nullopt;
    return Sarg{*col, "ISNULL", nullptr};
  }
  static const char* const kOps[] = {"=", "<", "<=", ">", ">="};
  static const char* const kFlipped[] = {"=", ">", ">=", "<", "<="};
  for (size_t i = 0; i < 5; ++i) {
    if (conjunct.op != kOps[i]) continue;
    if (const auto col = column_of(*conjunct.args[0]);
        col && IsRowFree(*conjunct.args[1])) {
      return Sarg{*col, kOps[i], conjunct.args[1].get()};
    }
    if (const auto col = column_of(*conjunct.args[1]);
        col && IsRowFree(*conjunct.args[0])) {
      return Sarg{*col, kFlipped[i], conjunct.args[0].get()};
    }
    return std::nullopt;
  }
  return std::nullopt;
}

IndexAccess PlanBaseAccess(const Table& table, const std::vector<Sarg>& sargs) {
  IndexAccess access;
  // First equality / IS NULL / range bound per column.
  std::vector<const Expr*> eq(table.schema().num_columns(), nullptr);
  std::vector<bool> is_null(table.schema().num_columns(), false);
  struct Bound {
    const Expr* expr = nullptr;
    bool inclusive = false;
  };
  std::vector<Bound> lower(table.schema().num_columns());
  std::vector<Bound> upper(table.schema().num_columns());
  for (const Sarg& sarg : sargs) {
    if (sarg.op == "=" && eq[sarg.column] == nullptr) {
      eq[sarg.column] = sarg.value;
    } else if (sarg.op == "ISNULL") {
      is_null[sarg.column] = true;
    } else if ((sarg.op == ">" || sarg.op == ">=") &&
               lower[sarg.column].expr == nullptr) {
      lower[sarg.column] = {sarg.value, sarg.op == ">="};
    } else if ((sarg.op == "<" || sarg.op == "<=") &&
               upper[sarg.column].expr == nullptr) {
      upper[sarg.column] = {sarg.value, sarg.op == "<="};
    }
  }

  // Primary key beats everything: at most one row.
  const auto& pk = table.schema().primary_key_indices();
  if (!pk.empty()) {
    bool covered = true;
    for (size_t idx : pk) covered = covered && eq[idx] != nullptr;
    if (covered) {
      access.kind = IndexAccess::Kind::kPrimaryKey;
      for (size_t idx : pk) access.eq_exprs.push_back(eq[idx]);
      return access;
    }
  }
  // Equality probe on any fully-covered index (hash preferred — declared
  // order breaks ties, and EnsureSchema declares hash indexes first).
  for (const auto& index : table.indexes()) {
    bool covered = true;
    for (size_t idx : index->columns) covered = covered && eq[idx] != nullptr;
    if (!covered) continue;
    access.kind = IndexAccess::Kind::kIndexEq;
    access.index = index.get();
    for (size_t idx : index->columns) access.eq_exprs.push_back(eq[idx]);
    return access;
  }
  // Range probe on a sorted index.
  for (const auto& index : table.indexes()) {
    if (index->kind != IndexKind::kSorted) continue;
    const size_t col = index->columns[0];
    if (lower[col].expr == nullptr && upper[col].expr == nullptr) continue;
    access.kind = IndexAccess::Kind::kIndexRange;
    access.index = index.get();
    access.lower = lower[col].expr;
    access.lower_inclusive = lower[col].inclusive;
    access.upper = upper[col].expr;
    access.upper_inclusive = upper[col].inclusive;
    return access;
  }
  // IS NULL probe on a single-column index.
  for (const auto& index : table.indexes()) {
    if (index->columns.size() != 1 || !is_null[index->columns[0]]) continue;
    access.kind = IndexAccess::Kind::kIndexNull;
    access.index = index.get();
    return access;
  }
  return access;  // full scan
}

JoinPlan PlanJoin(const Table& right, const Resolver& resolver,
                  size_t right_offset, const Expr& on) {
  JoinPlan plan;
  if (!ColumnsResolve(on, resolver)) return plan;
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(&on, &conjuncts);
  // First `right.col = <expr over earlier tables>` per right column.
  const size_t width = right.schema().num_columns();
  std::vector<const Expr*> eq(width, nullptr);
  for (const Expr* conjunct : conjuncts) {
    if (conjunct->kind != Expr::Kind::kBinary || conjunct->op != "=") continue;
    for (int side = 0; side < 2; ++side) {
      const Expr& col_side = *conjunct->args[side];
      const Expr& val_side = *conjunct->args[1 - side];
      if (col_side.kind != Expr::Kind::kColumn) continue;
      const auto idx = resolver.Resolve(col_side.qualifier, col_side.column);
      if (!idx.ok() || idx.value() < right_offset ||
          idx.value() >= right_offset + width) {
        continue;
      }
      if (!ColumnsBelow(val_side, resolver, right_offset)) continue;
      if (eq[idx.value() - right_offset] == nullptr) {
        eq[idx.value() - right_offset] = &val_side;
      }
      break;
    }
  }
  const auto& pk = right.schema().primary_key_indices();
  if (!pk.empty()) {
    bool covered = true;
    for (size_t idx : pk) covered = covered && eq[idx] != nullptr;
    if (covered) {
      plan.kind = JoinPlan::Kind::kPrimaryKey;
      for (size_t idx : pk) plan.outer_exprs.push_back(eq[idx]);
      return plan;
    }
  }
  for (const auto& index : right.indexes()) {
    bool covered = true;
    for (size_t idx : index->columns) covered = covered && eq[idx] != nullptr;
    if (!covered) continue;
    plan.kind = JoinPlan::Kind::kIndexEq;
    plan.index = index.get();
    for (size_t idx : index->columns) plan.outer_exprs.push_back(eq[idx]);
    return plan;
  }
  return plan;
}

std::string ColumnNames(const Schema& schema,
                        const std::vector<size_t>& columns) {
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.columns()[columns[i]].name;
  }
  return out;
}

std::string PkNames(const Schema& schema) {
  return ColumnNames(schema, schema.primary_key_indices());
}

}  // namespace

SelectPlan PlanSelect(const Database& database, const SelectStmt& stmt) {
  SelectPlan plan;
  const Table* from = database.GetTable(stmt.from_table);
  if (from == nullptr) {
    plan.joins.resize(stmt.joins.size());
    return plan;
  }

  // Bind progressively, exactly like the executor: the ON clause of join i
  // may only reference the FROM table and joins 0..i.
  Resolver resolver;
  resolver.Bind(stmt.from_alias.empty() ? stmt.from_table : stmt.from_alias,
                from->schema());
  size_t prior_width = resolver.total_columns();
  for (const JoinClause& join : stmt.joins) {
    const Table* right = database.GetTable(join.table);
    if (right == nullptr) {
      plan.joins.emplace_back();  // missing table: executor reports it
      continue;
    }
    resolver.Bind(join.alias.empty() ? join.table : join.alias,
                  right->schema());
    plan.joins.push_back(PlanJoin(*right, resolver, prior_width, *join.on));
    prior_width = resolver.total_columns();
  }

  if (stmt.where && ColumnsResolve(*stmt.where, resolver)) {
    std::vector<const Expr*> conjuncts;
    CollectConjuncts(stmt.where.get(), &conjuncts);
    std::vector<Sarg> sargs;
    for (const Expr* conjunct : conjuncts) {
      if (auto sarg = MatchSarg(*conjunct, resolver, 0,
                                from->schema().num_columns())) {
        sargs.push_back(*sarg);
      }
    }
    plan.base = PlanBaseAccess(*from, sargs);
  }
  return plan;
}

std::string DescribePlan(const Database& database, const SelectStmt& stmt,
                         const SelectPlan& plan) {
  std::ostringstream out;
  const Table* from = database.GetTable(stmt.from_table);
  out << "FROM " << stmt.from_table << ": ";
  if (from == nullptr) {
    out << "unknown table\n";
    return out.str();
  }
  const Schema& schema = from->schema();
  switch (plan.base.kind) {
    case IndexAccess::Kind::kFullScan:
      out << "full scan (" << from->size() << " rows)";
      break;
    case IndexAccess::Kind::kPrimaryKey:
      out << "primary-key probe (" << PkNames(schema) << ")";
      break;
    case IndexAccess::Kind::kIndexEq:
      out << "index equality probe " << plan.base.index->name << " ("
          << ColumnNames(schema, plan.base.index->columns) << ")";
      break;
    case IndexAccess::Kind::kIndexRange:
      out << "index range probe " << plan.base.index->name << " ("
          << ColumnNames(schema, plan.base.index->columns) << ", "
          << (plan.base.lower != nullptr ? "bounded below" : "unbounded below")
          << ", "
          << (plan.base.upper != nullptr ? "bounded above" : "unbounded above")
          << ")";
      break;
    case IndexAccess::Kind::kIndexNull:
      out << "index IS NULL probe " << plan.base.index->name << " ("
          << ColumnNames(schema, plan.base.index->columns) << ")";
      break;
  }
  out << "\n";
  for (size_t i = 0; i < stmt.joins.size(); ++i) {
    const JoinClause& join = stmt.joins[i];
    const Table* right = database.GetTable(join.table);
    out << "JOIN " << join.table << ": ";
    if (right == nullptr) {
      out << "unknown table\n";
      continue;
    }
    const JoinPlan fallback;
    const JoinPlan& jp = i < plan.joins.size() ? plan.joins[i] : fallback;
    switch (jp.kind) {
      case JoinPlan::Kind::kNestedLoop:
        out << "nested loop (" << right->size() << " rows per outer row)";
        break;
      case JoinPlan::Kind::kPrimaryKey:
        out << "primary-key probe (" << PkNames(right->schema()) << ")";
        break;
      case JoinPlan::Kind::kIndexEq:
        out << "index probe " << jp.index->name << " ("
            << ColumnNames(right->schema(), jp.index->columns) << ")";
        break;
    }
    out << "\n";
  }
  if (stmt.where) out << "WHERE: residual filter on candidates\n";
  if (!stmt.group_by.empty() ||
      std::any_of(stmt.items.begin(), stmt.items.end(),
                  [](const SelectItem& item) {
                    return item.expr && item.expr->ContainsAggregate();
                  })) {
    out << "GROUP/AGGREGATE: hash aggregation\n";
  }
  if (!stmt.order_by.empty()) out << "ORDER BY: stable sort\n";
  return out.str();
}

}  // namespace goofi::db
