// Prepared statements and a statement cache.
//
// A PreparedStatement parses its SQL once and, for SELECTs, caches the
// chosen access plan alongside the AST. The plan holds pointers into the
// database's tables and indexes, so it is keyed by (database, schema
// version): any DDL — CREATE/DROP TABLE or INDEX, or a Load — bumps
// Database::schema_version() and forces a replan on the next Execute.
//
// StatementCache maps SQL text to prepared statements so hot paths (the
// campaign store's per-experiment INSERT/SELECT) skip tokenizing, parsing
// and planning entirely after the first call. Both classes are internally
// locked; the database itself is not, so concurrent Execute calls are only
// safe when the callers already serialize table mutations (the parallel
// campaign runner commits batches under its own store mutex).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/sql_executor.hpp"

namespace goofi::db {

class PreparedStatement {
 public:
  /// Parses `sql`. Fails on parse errors; the statement is not validated
  /// against any schema until executed.
  static util::Result<std::shared_ptr<PreparedStatement>> Prepare(
      const std::string& sql);

  /// Executes with `params` bound to the `?` placeholders in order.
  /// Fails if the parameter count does not match.
  util::Result<QueryResult> Execute(Database& database,
                                    const std::vector<Value>& params = {});

  const std::string& sql() const { return sql_; }
  size_t params_expected() const { return params_expected_; }

  /// Number of times Execute (re)planned the SELECT. Stays 0 for
  /// non-SELECT statements; grows past 1 only after schema changes.
  uint64_t plans_built() const;

 private:
  PreparedStatement(std::string sql, Statement statement);

  const std::string sql_;
  const Statement statement_;
  const size_t params_expected_;

  // Cached SELECT plan, valid for (plan_database_, plan_version_) only.
  mutable std::mutex mutex_;
  SelectPlan plan_;
  const Database* plan_database_ = nullptr;
  uint64_t plan_version_ = 0;
  bool plan_valid_ = false;
  uint64_t plans_built_ = 0;
};

/// SQL-text-keyed cache of prepared statements.
class StatementCache {
 public:
  /// At most `capacity` distinct statements are kept; preparing one more
  /// evicts the whole cache (hot paths reuse a handful of fixed strings,
  /// so eviction only fires on adversarial workloads).
  explicit StatementCache(size_t capacity = 64) : capacity_(capacity) {}

  /// The prepared statement for `sql`, preparing and caching it on miss.
  util::Result<std::shared_ptr<PreparedStatement>> Get(const std::string& sql);

  /// Get + Execute in one call.
  util::Result<QueryResult> Execute(Database& database, const std::string& sql,
                                    const std::vector<Value>& params = {});

  uint64_t hits() const;
  uint64_t misses() const;
  size_t size() const;
  void Clear();

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<PreparedStatement>> cache_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace goofi::db
