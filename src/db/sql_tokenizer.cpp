#include "db/sql_tokenizer.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace goofi::db {

bool Token::IsKeyword(std::string_view keyword) const {
  return type == TokenType::kIdent && util::EqualsIgnoreCase(text, keyword);
}

util::Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  auto is_ident_start = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  auto is_ident_char = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };

  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comment
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (is_ident_start(c)) {
      size_t start = i;
      while (i < n && is_ident_char(sql[i])) ++i;
      tok.type = TokenType::kIdent;
      tok.text = sql.substr(start, i - start);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_real = false;
      // 0x hex integers
      if (c == '0' && i + 1 < n && (sql[i + 1] == 'x' || sql[i + 1] == 'X')) {
        i += 2;
        while (i < n && std::isxdigit(static_cast<unsigned char>(sql[i]))) ++i;
      } else {
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
        if (i < n && sql[i] == '.') {
          is_real = true;
          ++i;
          while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
        }
        if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
          is_real = true;
          ++i;
          if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
          while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
        }
      }
      const std::string text = sql.substr(start, i - start);
      if (is_real) {
        const auto v = util::ParseDouble(text);
        if (!v) return util::ParseError("bad numeric literal: " + text);
        tok.type = TokenType::kReal;
        tok.real_value = *v;
      } else {
        const auto v = util::ParseInt(text);
        if (!v) return util::ParseError("bad integer literal: " + text);
        tok.type = TokenType::kInt;
        tok.int_value = *v;
      }
      tok.text = text;
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string body;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            body.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        body.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return util::ParseError("unterminated string literal at offset " +
                                std::to_string(tok.offset));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(body);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Multi-char operators first.
    auto two = (i + 1 < n) ? sql.substr(i, 2) : std::string();
    tok.type = TokenType::kSymbol;
    if (two == "<=" || two == ">=" || two == "!=" || two == "<>") {
      tok.text = (two == "<>") ? "!=" : two;
      i += 2;
    } else if (std::string("()*,=<>+-/%.;?").find(c) != std::string::npos) {
      tok.text = std::string(1, c);
      ++i;
    } else {
      return util::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(i));
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace goofi::db
