// Query planning: column resolution over joined tables, sargable-predicate
// analysis, and index access-path selection for SELECT statements.
//
// The planner is purely advisory: a SelectPlan tells the executor which
// index (if any) can produce the candidate rows of the FROM table and of
// each JOIN, and the executor re-evaluates the full WHERE/ON expressions on
// those candidates. That residual evaluation is what keeps indexed
// execution byte-identical to a full scan — the index only has to deliver a
// superset of the matching rows, in ascending slot (= insertion) order.
//
// Plans hold raw pointers into the statement's AST and into the database's
// Table/SecondaryIndex objects. They stay valid while the statement is
// alive and Database::schema_version() is unchanged; the prepared-statement
// layer replans on a version mismatch.
#pragma once

#include <string>
#include <vector>

#include "db/database.hpp"
#include "db/sql_ast.hpp"
#include "util/strings.hpp"

namespace goofi::db {

/// One table (or alias) bound into a combined row. A "combined row" is the
/// concatenation of one row from each bound table, in binding order.
struct TableBinding {
  std::string alias;  ///< table name or user alias
  const Schema* schema = nullptr;
  size_t base_offset = 0;  ///< index of this table's first column in the row
};

/// Resolves column references against the bound tables and carries the
/// bound `?` parameter values during execution.
class Resolver {
 public:
  void Bind(std::string alias, const Schema& schema) {
    TableBinding b;
    b.alias = std::move(alias);
    b.schema = &schema;
    b.base_offset = total_columns_;
    total_columns_ += schema.num_columns();
    bindings_.push_back(std::move(b));
  }

  size_t total_columns() const { return total_columns_; }
  const std::vector<TableBinding>& bindings() const { return bindings_; }

  util::Result<size_t> Resolve(const std::string& qualifier,
                               const std::string& column) const {
    std::optional<size_t> found;
    for (const TableBinding& b : bindings_) {
      if (!qualifier.empty() && !util::EqualsIgnoreCase(b.alias, qualifier)) {
        continue;
      }
      if (auto idx = b.schema->ColumnIndex(column)) {
        if (found) {
          return util::InvalidArgument("ambiguous column " + column);
        }
        found = b.base_offset + *idx;
      }
    }
    if (!found) {
      return util::NotFound(
          "unknown column " +
          (qualifier.empty() ? column : qualifier + "." + column));
    }
    return *found;
  }

  void SetParams(const std::vector<Value>* params) { params_ = params; }

  util::Result<Value> Param(size_t index) const {
    if (params_ == nullptr || index >= params_->size()) {
      return util::InvalidArgument("unbound parameter ?" +
                                   std::to_string(index + 1));
    }
    return (*params_)[index];
  }

 private:
  std::vector<TableBinding> bindings_;
  size_t total_columns_ = 0;
  const std::vector<Value>* params_ = nullptr;
};

/// How the executor produces candidate slots for the FROM table.
struct IndexAccess {
  enum class Kind {
    kFullScan,    ///< every live slot
    kPrimaryKey,  ///< pk_index probe; eq_exprs give the key, in PK order
    kIndexEq,     ///< secondary-index equality probe; eq_exprs in key order
    kIndexRange,  ///< sorted-index range probe via lower/upper
    kIndexNull,   ///< IS NULL probe on a single-column index
  };
  Kind kind = Kind::kFullScan;
  const SecondaryIndex* index = nullptr;  ///< null for kPrimaryKey
  /// Row-independent expressions producing the key values (params allowed).
  std::vector<const Expr*> eq_exprs;
  const Expr* lower = nullptr;
  bool lower_inclusive = false;
  const Expr* upper = nullptr;
  bool upper_inclusive = false;
};

/// How one JOIN clause finds its matching right-table rows.
struct JoinPlan {
  enum class Kind {
    kNestedLoop,  ///< evaluate ON against every right row
    kPrimaryKey,  ///< probe the right table's PK with values from the left row
    kIndexEq,     ///< probe a right-table secondary index likewise
  };
  Kind kind = Kind::kNestedLoop;
  const SecondaryIndex* index = nullptr;
  /// Key-value expressions over the tables bound before this join.
  std::vector<const Expr*> outer_exprs;
};

struct SelectPlan {
  IndexAccess base;
  std::vector<JoinPlan> joins;  ///< parallel to SelectStmt::joins
};

/// Builds the access plan for `stmt`. Never fails: on missing tables,
/// unresolvable columns or non-sargable predicates it degrades to full
/// scans and lets the executor surface errors through normal evaluation.
SelectPlan PlanSelect(const Database& database, const SelectStmt& stmt);

/// Human-readable description of the plan (the `explain` shell command).
std::string DescribePlan(const Database& database, const SelectStmt& stmt,
                         const SelectPlan& plan);

}  // namespace goofi::db
