#include "db/table.hpp"

#include <algorithm>
#include <cassert>

#include "util/strings.hpp"

namespace goofi::db {

namespace {

/// Inserts `slot` into `postings` keeping ascending order. Insert() always
/// appends the largest slot, but UpdateWhere re-indexes interior slots.
void InsertSorted(std::vector<size_t>* postings, size_t slot) {
  const auto it = std::lower_bound(postings->begin(), postings->end(), slot);
  postings->insert(it, slot);
}

/// Removes `slot` from `postings`; the caller guarantees it is present.
void EraseSorted(std::vector<size_t>* postings, size_t slot) {
  const auto it = std::lower_bound(postings->begin(), postings->end(), slot);
  assert(it != postings->end() && *it == slot);
  postings->erase(it);
}

}  // namespace

Row Table::ExtractKey(const Row& row) const {
  Row key;
  key.reserve(schema_.primary_key_indices().size());
  for (size_t idx : schema_.primary_key_indices()) key.push_back(row[idx]);
  return key;
}

Row Table::IndexKeyOf(const SecondaryIndex& index, const Row& row) const {
  Row key;
  key.reserve(index.columns.size());
  for (size_t idx : index.columns) key.push_back(row[idx]);
  return key;
}

void Table::AddToIndexes(size_t slot) {
  const Row& row = rows_[slot];
  for (const auto& index : indexes_) {
    if (index->kind == IndexKind::kSorted) {
      InsertSorted(&index->sorted[row[index->columns[0]]], slot);
    } else {
      InsertSorted(&index->hash[IndexKeyOf(*index, row)], slot);
    }
  }
}

void Table::RemoveFromIndexes(size_t slot) {
  const Row& row = rows_[slot];
  for (const auto& index : indexes_) {
    if (index->kind == IndexKind::kSorted) {
      const auto it = index->sorted.find(row[index->columns[0]]);
      assert(it != index->sorted.end());
      EraseSorted(&it->second, slot);
      if (it->second.empty()) index->sorted.erase(it);
    } else {
      const auto it = index->hash.find(IndexKeyOf(*index, row));
      assert(it != index->hash.end());
      EraseSorted(&it->second, slot);
      if (it->second.empty()) index->hash.erase(it);
    }
  }
}

util::Status Table::Insert(Row row) {
  GOOFI_RETURN_IF_ERROR(schema_.CheckRow(row));
  if (!schema_.primary_key_indices().empty()) {
    Row key = ExtractKey(row);
    for (const Value& v : key) {
      if (v.is_null()) {
        return util::ConstraintViolation("table " + schema_.table_name() +
                                         ": NULL in primary key");
      }
    }
    if (pk_index_.contains(key)) {
      return util::ConstraintViolation("table " + schema_.table_name() +
                                       ": duplicate primary key");
    }
    pk_index_.emplace(std::move(key), rows_.size());
  }
  rows_.push_back(std::move(row));
  live_.push_back(true);
  ++live_count_;
  if (!indexes_.empty()) AddToIndexes(rows_.size() - 1);
  if (observer_ != nullptr) observer_->OnInsert(*this, rows_.back());
  return util::Status::Ok();
}

void Table::Reserve(size_t total_slots) {
  rows_.reserve(total_slots);
  live_.reserve(total_slots);
  if (!schema_.primary_key_indices().empty()) pk_index_.reserve(total_slots);
}

std::optional<size_t> Table::FindByPrimaryKey(const Row& key) const {
  assert(!schema_.primary_key_indices().empty());
  const auto it = pk_index_.find(key);
  if (it == pk_index_.end()) return std::nullopt;
  return it->second;
}

bool Table::ExistsWhere(const std::vector<size_t>& column_indices,
                        const Row& values) const {
  assert(column_indices.size() == values.size());
  // Fast path: the queried columns are exactly the primary key.
  if (column_indices == schema_.primary_key_indices() &&
      !column_indices.empty()) {
    return pk_index_.contains(values);
  }
  // Fast path: a secondary index covers exactly the queried columns. Index
  // keys and this scan both match with Compare (NULL == NULL), so the probe
  // is an exact substitute.
  for (const auto& index : indexes_) {
    if (index->columns != column_indices) continue;
    if (index->kind == IndexKind::kSorted) {
      return index->sorted.contains(values[0]);
    }
    return index->hash.contains(values);
  }
  for (size_t slot = 0; slot < rows_.size(); ++slot) {
    if (!live_[slot]) continue;
    bool match = true;
    for (size_t i = 0; i < column_indices.size(); ++i) {
      if (rows_[slot][column_indices[i]].Compare(values[i]) != 0) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

size_t Table::DeleteWhere(const std::function<bool(const Row&)>& predicate) {
  size_t deleted = 0;
  std::vector<Row> removed;  // row images for the observer, copied pre-clear
  for (size_t slot = 0; slot < rows_.size(); ++slot) {
    if (!live_[slot] || !predicate(rows_[slot])) continue;
    if (observer_ != nullptr) removed.push_back(rows_[slot]);
    if (!schema_.primary_key_indices().empty()) {
      pk_index_.erase(ExtractKey(rows_[slot]));
    }
    if (!indexes_.empty()) RemoveFromIndexes(slot);
    live_[slot] = false;
    rows_[slot].clear();
    ++deleted;
  }
  live_count_ -= deleted;
  if (observer_ != nullptr && !removed.empty()) {
    observer_->OnDelete(*this, removed);
  }
  return deleted;
}

util::Status Table::UpdateWhere(
    const std::function<bool(const Row&)>& predicate,
    const std::function<void(Row&)>& mutate, size_t* updated) {
  size_t count = 0;
  std::vector<std::pair<Row, Row>> changes;  // (old, new) for the observer
  const auto notify = [&] {
    if (observer_ != nullptr && !changes.empty()) {
      observer_->OnUpdate(*this, changes);
    }
  };
  for (size_t slot = 0; slot < rows_.size(); ++slot) {
    if (!live_[slot] || !predicate(rows_[slot])) continue;
    Row candidate = rows_[slot];
    mutate(candidate);
    const util::Status st = schema_.CheckRow(candidate);
    if (!st.ok()) {
      if (updated != nullptr) *updated = count;
      notify();
      return st;
    }
    if (!schema_.primary_key_indices().empty()) {
      Row old_key = ExtractKey(rows_[slot]);
      Row new_key = ExtractKey(candidate);
      if (!KeyEq{}(old_key, new_key)) {
        const auto it = pk_index_.find(new_key);
        if (it != pk_index_.end() && it->second != slot) {
          if (updated != nullptr) *updated = count;
          notify();
          return util::ConstraintViolation(
              "table " + schema_.table_name() +
              ": update would duplicate primary key");
        }
        pk_index_.erase(old_key);
        pk_index_.emplace(std::move(new_key), slot);
      }
    }
    if (observer_ != nullptr) changes.emplace_back(rows_[slot], candidate);
    if (!indexes_.empty()) RemoveFromIndexes(slot);
    rows_[slot] = std::move(candidate);
    if (!indexes_.empty()) AddToIndexes(slot);
    ++count;
  }
  if (updated != nullptr) *updated = count;
  notify();
  return util::Status::Ok();
}

void Table::ForEach(const std::function<void(const Row&)>& fn) const {
  for (size_t slot = 0; slot < rows_.size(); ++slot) {
    if (live_[slot]) fn(rows_[slot]);
  }
}

std::vector<Row> Table::Rows() const {
  std::vector<Row> out;
  out.reserve(live_count_);
  ForEach([&out](const Row& row) { out.push_back(row); });
  return out;
}

// --- secondary indexes -------------------------------------------------------

util::Status Table::CreateIndex(const std::string& name,
                                const std::vector<std::string>& columns,
                                IndexKind kind) {
  if (FindIndex(name) != nullptr) {
    return util::AlreadyExists("index " + name + " already exists on " +
                               schema_.table_name());
  }
  if (columns.empty()) {
    return util::InvalidArgument("index " + name + " needs at least one column");
  }
  if (kind == IndexKind::kSorted && columns.size() != 1) {
    return util::InvalidArgument("sorted index " + name +
                                 " must have exactly one column");
  }
  auto index = std::make_unique<SecondaryIndex>();
  index->name = name;
  index->kind = kind;
  for (const std::string& col : columns) {
    const auto idx = schema_.ColumnIndex(col);
    if (!idx) {
      return util::NotFound("no column " + col + " in " + schema_.table_name());
    }
    index->columns.push_back(*idx);
  }
  indexes_.push_back(std::move(index));
  // Build from existing rows; ascending slot order keeps postings sorted.
  SecondaryIndex& built = *indexes_.back();
  for (size_t slot = 0; slot < rows_.size(); ++slot) {
    if (!live_[slot]) continue;
    if (built.kind == IndexKind::kSorted) {
      built.sorted[rows_[slot][built.columns[0]]].push_back(slot);
    } else {
      built.hash[IndexKeyOf(built, rows_[slot])].push_back(slot);
    }
  }
  return util::Status::Ok();
}

util::Status Table::DropIndex(const std::string& name) {
  for (auto it = indexes_.begin(); it != indexes_.end(); ++it) {
    if (util::EqualsIgnoreCase((*it)->name, name)) {
      indexes_.erase(it);
      return util::Status::Ok();
    }
  }
  return util::NotFound("no index " + name + " on " + schema_.table_name());
}

const SecondaryIndex* Table::FindIndex(const std::string& name) const {
  for (const auto& index : indexes_) {
    if (util::EqualsIgnoreCase(index->name, name)) return index.get();
  }
  return nullptr;
}

std::vector<size_t> Table::IndexEqualSlots(const SecondaryIndex& index,
                                           const Row& key) const {
  if (index.kind == IndexKind::kSorted) {
    const auto it = index.sorted.find(key[0]);
    if (it == index.sorted.end()) return {};
    return it->second;
  }
  const auto it = index.hash.find(key);
  if (it == index.hash.end()) return {};
  return it->second;
}

std::vector<size_t> Table::IndexRangeSlots(const SecondaryIndex& index,
                                           const Value* lower,
                                           bool lower_inclusive,
                                           const Value* upper,
                                           bool upper_inclusive) const {
  assert(index.kind == IndexKind::kSorted);
  // NULL sorts before everything, so starting past NULL excludes it; a NULL
  // column never satisfies a range predicate in SQL.
  const Value null = Value::Null();
  auto begin = index.sorted.upper_bound(null);
  if (lower != nullptr) {
    begin = lower_inclusive ? index.sorted.lower_bound(*lower)
                            : index.sorted.upper_bound(*lower);
    // A NULL bound matches nothing (`col >= NULL` is never true), but
    // lower_bound(NULL) would start at the NULL key; skip it.
    if (begin != index.sorted.end() && begin->first.is_null()) ++begin;
  }
  // Stop on the upper bound by key comparison rather than by a precomputed
  // end iterator: with an inverted range (lower above upper) the end iterator
  // would sit before `begin` and the walk would run off the map.
  std::vector<size_t> slots;
  for (auto it = begin; it != index.sorted.end(); ++it) {
    if (upper != nullptr) {
      const int c = it->first.Compare(*upper);
      if (c > 0 || (c == 0 && !upper_inclusive)) break;
    }
    slots.insert(slots.end(), it->second.begin(), it->second.end());
  }
  return slots;
}

bool Table::ValidateIndexes(std::string* error) const {
  for (const auto& index : indexes_) {
    SecondaryIndex rebuilt;
    rebuilt.kind = index->kind;
    rebuilt.columns = index->columns;
    for (size_t slot = 0; slot < rows_.size(); ++slot) {
      if (!live_[slot]) continue;
      if (rebuilt.kind == IndexKind::kSorted) {
        rebuilt.sorted[rows_[slot][rebuilt.columns[0]]].push_back(slot);
      } else {
        rebuilt.hash[IndexKeyOf(rebuilt, rows_[slot])].push_back(slot);
      }
    }
    auto fail = [&](const std::string& message) {
      if (error != nullptr) {
        *error = "index " + index->name + " on " + schema_.table_name() + ": " +
                 message;
      }
      return false;
    };
    if (index->kind == IndexKind::kSorted) {
      if (index->sorted.size() != rebuilt.sorted.size()) {
        return fail("key count mismatch");
      }
      for (const auto& [key, postings] : rebuilt.sorted) {
        const auto it = index->sorted.find(key);
        if (it == index->sorted.end() || it->second != postings) {
          return fail("postings mismatch for key " + key.Serialize());
        }
      }
    } else {
      if (index->hash.size() != rebuilt.hash.size()) {
        return fail("key count mismatch");
      }
      for (const auto& [key, postings] : rebuilt.hash) {
        const auto it = index->hash.find(key);
        if (it == index->hash.end() || it->second != postings) {
          return fail("postings mismatch");
        }
      }
    }
  }
  return true;
}

}  // namespace goofi::db
