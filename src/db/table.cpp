#include "db/table.hpp"

#include <cassert>

namespace goofi::db {

Row Table::ExtractKey(const Row& row) const {
  Row key;
  key.reserve(schema_.primary_key_indices().size());
  for (size_t idx : schema_.primary_key_indices()) key.push_back(row[idx]);
  return key;
}

util::Status Table::Insert(Row row) {
  GOOFI_RETURN_IF_ERROR(schema_.CheckRow(row));
  if (!schema_.primary_key_indices().empty()) {
    Row key = ExtractKey(row);
    for (const Value& v : key) {
      if (v.is_null()) {
        return util::ConstraintViolation("table " + schema_.table_name() +
                                         ": NULL in primary key");
      }
    }
    if (pk_index_.contains(key)) {
      return util::ConstraintViolation("table " + schema_.table_name() +
                                       ": duplicate primary key");
    }
    pk_index_.emplace(std::move(key), rows_.size());
  }
  rows_.push_back(std::move(row));
  live_.push_back(true);
  ++live_count_;
  return util::Status::Ok();
}

std::optional<size_t> Table::FindByPrimaryKey(const Row& key) const {
  assert(!schema_.primary_key_indices().empty());
  const auto it = pk_index_.find(key);
  if (it == pk_index_.end()) return std::nullopt;
  return it->second;
}

bool Table::ExistsWhere(const std::vector<size_t>& column_indices,
                        const Row& values) const {
  assert(column_indices.size() == values.size());
  // Fast path: the queried columns are exactly the primary key.
  if (column_indices == schema_.primary_key_indices() &&
      !column_indices.empty()) {
    return pk_index_.contains(values);
  }
  for (size_t slot = 0; slot < rows_.size(); ++slot) {
    if (!live_[slot]) continue;
    bool match = true;
    for (size_t i = 0; i < column_indices.size(); ++i) {
      if (rows_[slot][column_indices[i]].Compare(values[i]) != 0) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

size_t Table::DeleteWhere(const std::function<bool(const Row&)>& predicate) {
  size_t deleted = 0;
  for (size_t slot = 0; slot < rows_.size(); ++slot) {
    if (!live_[slot] || !predicate(rows_[slot])) continue;
    if (!schema_.primary_key_indices().empty()) {
      pk_index_.erase(ExtractKey(rows_[slot]));
    }
    live_[slot] = false;
    rows_[slot].clear();
    ++deleted;
  }
  live_count_ -= deleted;
  return deleted;
}

util::Status Table::UpdateWhere(
    const std::function<bool(const Row&)>& predicate,
    const std::function<void(Row&)>& mutate, size_t* updated) {
  size_t count = 0;
  for (size_t slot = 0; slot < rows_.size(); ++slot) {
    if (!live_[slot] || !predicate(rows_[slot])) continue;
    Row candidate = rows_[slot];
    mutate(candidate);
    const util::Status st = schema_.CheckRow(candidate);
    if (!st.ok()) {
      if (updated != nullptr) *updated = count;
      return st;
    }
    if (!schema_.primary_key_indices().empty()) {
      Row old_key = ExtractKey(rows_[slot]);
      Row new_key = ExtractKey(candidate);
      if (!KeyEq{}(old_key, new_key)) {
        const auto it = pk_index_.find(new_key);
        if (it != pk_index_.end() && it->second != slot) {
          if (updated != nullptr) *updated = count;
          return util::ConstraintViolation(
              "table " + schema_.table_name() +
              ": update would duplicate primary key");
        }
        pk_index_.erase(old_key);
        pk_index_.emplace(std::move(new_key), slot);
      }
    }
    rows_[slot] = std::move(candidate);
    ++count;
  }
  if (updated != nullptr) *updated = count;
  return util::Status::Ok();
}

void Table::ForEach(const std::function<void(const Row&)>& fn) const {
  for (size_t slot = 0; slot < rows_.size(); ++slot) {
    if (live_[slot]) fn(rows_[slot]);
  }
}

std::vector<Row> Table::Rows() const {
  std::vector<Row> out;
  out.reserve(live_count_);
  ForEach([&out](const Row& row) { out.push_back(row); });
  return out;
}

}  // namespace goofi::db
