// Table schemas: typed columns, primary keys and foreign keys.
//
// The paper (Fig. 4) stresses that "the relations between the tables in the
// database are designed to use foreign keys ... Through the foreign keys, we
// prevent inconsistencies in the database". This module carries those
// declarations; enforcement lives in Database.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "db/value.hpp"
#include "util/status.hpp"

namespace goofi::db {

struct Column {
  std::string name;
  ValueType type = ValueType::kText;
  bool not_null = false;

  bool operator==(const Column&) const = default;
};

/// FOREIGN KEY (local_columns) REFERENCES ref_table (ref_columns).
/// Deletes from the referenced table are RESTRICTed while referencing rows
/// exist (the paper's campaigns must never lose their target-system rows).
struct ForeignKey {
  std::vector<std::string> local_columns;
  std::string ref_table;
  std::vector<std::string> ref_columns;

  bool operator==(const ForeignKey&) const = default;
};

class Schema {
 public:
  Schema() = default;
  Schema(std::string table_name, std::vector<Column> columns,
         std::vector<std::string> primary_key = {},
         std::vector<ForeignKey> foreign_keys = {});

  const std::string& table_name() const { return table_name_; }
  const std::vector<Column>& columns() const { return columns_; }
  const std::vector<std::string>& primary_key() const { return primary_key_; }
  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }

  size_t num_columns() const { return columns_.size(); }

  /// Index of a column by (case-insensitive) name, or nullopt.
  std::optional<size_t> ColumnIndex(std::string_view name) const;

  /// Indices of primary-key columns, in declaration order of the PK.
  const std::vector<size_t>& primary_key_indices() const {
    return primary_key_indices_;
  }

  /// Verifies internal consistency: known PK/FK column names, no duplicate
  /// column names, value arity. Called by Database::CreateTable.
  util::Status Validate() const;

  /// Checks a row against column count, types and NOT NULL constraints.
  /// NULL is accepted for nullable columns regardless of declared type;
  /// INT is accepted where REAL is declared (widening).
  util::Status CheckRow(const std::vector<Value>& row) const;

 private:
  std::string table_name_;
  std::vector<Column> columns_;
  std::vector<std::string> primary_key_;
  std::vector<ForeignKey> foreign_keys_;
  std::vector<size_t> primary_key_indices_;
};

}  // namespace goofi::db
