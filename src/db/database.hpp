// The database: a set of tables with cross-table foreign-key enforcement and
// file persistence.
//
// Mirrors the role of the SQL database in the paper's lowest layer (Fig. 1):
// it stores TargetSystemData, CampaignData and LoggedSystemState and prevents
// inconsistencies through foreign keys (Fig. 4). The schema bindings for
// those specific tables live in core/campaign_store.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "db/table.hpp"

namespace goofi::db {

class Database {
 public:
  Database() = default;

  // Movable, not copyable (tables can be large).
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a table. Validates the schema and that every foreign key
  /// references an existing table/columns.
  util::Status CreateTable(Schema schema);

  util::Status DropTable(const std::string& name);

  /// Creates a secondary index on `table` (see Table::CreateIndex). Index
  /// names are scoped per table.
  util::Status CreateIndex(const std::string& table, const std::string& name,
                           const std::vector<std::string>& columns,
                           IndexKind kind);

  util::Status DropIndex(const std::string& table, const std::string& name);

  /// Monotonic counter bumped by every DDL change (CreateTable/DropTable/
  /// CreateIndex/DropIndex/Load). Cached query plans hold Table* and
  /// SecondaryIndex* pointers; a version mismatch tells the prepared-
  /// statement layer to replan before touching them.
  uint64_t schema_version() const { return schema_version_; }

  bool HasTable(const std::string& name) const;

  /// nullptr if missing. Names are case-insensitive.
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  /// Inserts with FK checking: every non-NULL foreign key of `row` must match
  /// an existing row in the referenced table.
  util::Status Insert(const std::string& table, Row row);

  /// Inserts `rows` in order with FK checking, resolving the table and its
  /// foreign-key column indices once for the whole batch and memoizing FK
  /// lookups (campaign batches repeat the same key values row after row).
  /// Rows may reference earlier rows of the same batch. All-or-nothing: if
  /// any row fails, the rows of this batch inserted so far are deleted again
  /// and the first error is returned.
  util::Status InsertBatch(const std::string& table, std::vector<Row> rows);

  /// Deletes rows matching `predicate` with FK checking: fails (RESTRICT)
  /// if any row to delete is still referenced by another table.
  util::Status Delete(const std::string& table,
                      const std::function<bool(const Row&)>& predicate,
                      size_t* deleted = nullptr);

  /// Saves every table to `<path>`: a single text file with a CRC32 trailer.
  util::Status Save(const std::string& path) const;

  /// Loads a database previously written by Save. Replaces current contents.
  util::Status Load(const std::string& path);

 private:
  /// Checks the FK constraints of `row` about to enter `table`.
  util::Status CheckForeignKeysOnInsert(const Table& table, const Row& row) const;

  /// Whether `row` of `table_name` is referenced by any row elsewhere.
  bool IsReferenced(const std::string& table_name, const Table& table,
                    const Row& row) const;

  // Keyed by lowercase name; Table keeps the declared-case name.
  std::map<std::string, std::unique_ptr<Table>> tables_;
  uint64_t schema_version_ = 0;
};

}  // namespace goofi::db
