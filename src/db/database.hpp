// The database: a set of tables with cross-table foreign-key enforcement and
// file persistence.
//
// Mirrors the role of the SQL database in the paper's lowest layer (Fig. 1):
// it stores TargetSystemData, CampaignData and LoggedSystemState and prevents
// inconsistencies through foreign keys (Fig. 4). The schema bindings for
// those specific tables live in core/campaign_store.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "db/table.hpp"

namespace goofi::db {

/// Extends the table-level observer with DDL and batch bracketing events.
/// db::Archive implements this to mirror every mutation into its WAL.
class DatabaseObserver : public TableObserver {
 public:
  /// Brackets around InsertBatch: the per-row OnInsert callbacks in between
  /// belong to one all-or-nothing batch. `committed` is false when the batch
  /// failed and was rolled back (the rollback's delete events are part of
  /// the bracket too and carry no net effect).
  virtual void OnInsertBatchBegin(const Table& table) = 0;
  virtual void OnInsertBatchEnd(const Table& table, bool committed) = 0;

  virtual void OnCreateTable(const Schema& schema) = 0;
  virtual void OnDropTable(const std::string& name) = 0;
  virtual void OnCreateIndex(const Table& table, const std::string& name,
                             const std::vector<std::string>& columns,
                             IndexKind kind) = 0;
  virtual void OnDropIndex(const Table& table, const std::string& name) = 0;
};

class Database {
 public:
  Database() = default;

  // Movable, not copyable (tables can be large).
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a table. Validates the schema and that every foreign key
  /// references an existing table/columns.
  util::Status CreateTable(Schema schema);

  util::Status DropTable(const std::string& name);

  /// Creates a secondary index on `table` (see Table::CreateIndex). Index
  /// names are scoped per table.
  util::Status CreateIndex(const std::string& table, const std::string& name,
                           const std::vector<std::string>& columns,
                           IndexKind kind);

  util::Status DropIndex(const std::string& table, const std::string& name);

  /// Monotonic counter bumped by every DDL change (CreateTable/DropTable/
  /// CreateIndex/DropIndex/Load). Cached query plans hold Table* and
  /// SecondaryIndex* pointers; a version mismatch tells the prepared-
  /// statement layer to replan before touching them.
  uint64_t schema_version() const { return schema_version_; }

  bool HasTable(const std::string& name) const;

  /// nullptr if missing. Names are case-insensitive.
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  /// Inserts with FK checking: every non-NULL foreign key of `row` must match
  /// an existing row in the referenced table.
  util::Status Insert(const std::string& table, Row row);

  /// Inserts `rows` in order with FK checking, resolving the table and its
  /// foreign-key column indices once for the whole batch and memoizing FK
  /// lookups (campaign batches repeat the same key values row after row).
  /// Rows may reference earlier rows of the same batch. All-or-nothing: if
  /// any row fails, the rows of this batch inserted so far are deleted again
  /// and the first error is returned.
  util::Status InsertBatch(const std::string& table, std::vector<Row> rows);

  /// Deletes rows matching `predicate` with FK checking: fails (RESTRICT)
  /// if any row to delete is still referenced by another table.
  util::Status Delete(const std::string& table,
                      const std::function<bool(const Row&)>& predicate,
                      size_t* deleted = nullptr);

  /// Saves every table to `<path>` in the binary columnar snapshot format
  /// (per-segment CRC32, temp file + atomic rename; see db/archive).
  util::Status Save(const std::string& path) const;

  /// Saves in the pre-archive line-oriented text format. Kept for
  /// compatibility tests and for producing files older tools can read.
  util::Status SaveLegacyText(const std::string& path) const;

  /// Loads a database written by Save (binary) or SaveLegacyText — the first
  /// byte discriminates. Replaces current contents; persisted index
  /// definitions are recreated and schema_version is bumped so stale
  /// prepared plans invalidate. `epoch_out`/`legacy_out` (optional) receive
  /// the snapshot epoch and whether the file was legacy text.
  util::Status Load(const std::string& path, uint64_t* epoch_out = nullptr,
                    bool* legacy_out = nullptr);

  /// Attaches (or with nullptr detaches) a mutation observer, propagating it
  /// to every current and future table. At most one; caller keeps ownership.
  /// Load drops the attachment (the observed tables are destroyed wholesale,
  /// not mutated row by row) — reattach afterwards if still wanted.
  void SetObserver(DatabaseObserver* observer);
  DatabaseObserver* observer() const { return observer_; }

 private:
  /// Checks the FK constraints of `row` about to enter `table`.
  util::Status CheckForeignKeysOnInsert(const Table& table, const Row& row) const;

  /// Whether `row` of `table_name` is referenced by any row elsewhere.
  bool IsReferenced(const std::string& table_name, const Table& table,
                    const Row& row) const;

  // Keyed by lowercase name; Table keeps the declared-case name.
  std::map<std::string, std::unique_ptr<Table>> tables_;
  uint64_t schema_version_ = 0;
  DatabaseObserver* observer_ = nullptr;  ///< not owned
};

}  // namespace goofi::db
