// Typed cell values for the embedded relational database.
//
// The GOOFI database (paper Fig. 4) stores campaign configuration and logged
// system state. Four SQL-ish types cover everything the tool stores: NULL,
// INTEGER (64-bit), REAL (double) and TEXT (which also carries serialized
// BitVec state vectors).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "util/status.hpp"

namespace goofi::db {

enum class ValueType { kNull = 0, kInt, kReal, kText };

const char* ValueTypeName(ValueType type);

/// One database cell. Value is an immutable-ish small value type with strict
/// ordering used by indexes and ORDER BY.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Real(double v) { return Value(v); }
  static Value Text(std::string v) { return Value(std::move(v)); }
  static Value Bool(bool v) { return Value(static_cast<int64_t>(v)); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  /// Precondition: matching type (as_real additionally accepts kInt).
  int64_t as_int() const;
  double as_real() const;
  const std::string& as_text() const;

  /// Truthiness for WHERE clauses: NULL and 0 are false.
  bool Truthy() const;

  /// Total order across types: NULL < INT/REAL (numeric order) < TEXT.
  /// Mixed INT/REAL compare numerically, matching SQLite semantics.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Display form ("NULL", "42", "3.5", "abc").
  std::string ToString() const;

  /// Serialized form with a type tag, round-trippable via Deserialize.
  std::string Serialize() const;
  static util::Result<Value> Deserialize(const std::string& text);

  /// Hash compatible with operator== for same-type values.
  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

}  // namespace goofi::db
