#include "db/schema.hpp"

#include <unordered_set>

#include "util/strings.hpp"

namespace goofi::db {

Schema::Schema(std::string table_name, std::vector<Column> columns,
               std::vector<std::string> primary_key,
               std::vector<ForeignKey> foreign_keys)
    : table_name_(std::move(table_name)),
      columns_(std::move(columns)),
      primary_key_(std::move(primary_key)),
      foreign_keys_(std::move(foreign_keys)) {
  primary_key_indices_.reserve(primary_key_.size());
  for (const auto& name : primary_key_) {
    if (auto idx = ColumnIndex(name)) primary_key_indices_.push_back(*idx);
  }
}

std::optional<size_t> Schema::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (util::EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

util::Status Schema::Validate() const {
  if (table_name_.empty()) return util::InvalidArgument("empty table name");
  if (columns_.empty()) {
    return util::InvalidArgument("table " + table_name_ + " has no columns");
  }
  std::unordered_set<std::string> seen;
  for (const auto& col : columns_) {
    if (col.name.empty()) {
      return util::InvalidArgument("table " + table_name_ + ": empty column name");
    }
    if (!seen.insert(util::ToLower(col.name)).second) {
      return util::InvalidArgument("table " + table_name_ +
                                   ": duplicate column " + col.name);
    }
    if (col.type == ValueType::kNull) {
      return util::InvalidArgument("table " + table_name_ + ": column " +
                                   col.name + " declared NULL type");
    }
  }
  if (primary_key_indices_.size() != primary_key_.size()) {
    return util::InvalidArgument("table " + table_name_ +
                                 ": primary key names unknown column");
  }
  for (const auto& fk : foreign_keys_) {
    if (fk.local_columns.empty() ||
        fk.local_columns.size() != fk.ref_columns.size()) {
      return util::InvalidArgument("table " + table_name_ +
                                   ": malformed foreign key");
    }
    for (const auto& col : fk.local_columns) {
      if (!ColumnIndex(col)) {
        return util::InvalidArgument("table " + table_name_ +
                                     ": foreign key names unknown column " + col);
      }
    }
  }
  return util::Status::Ok();
}

util::Status Schema::CheckRow(const std::vector<Value>& row) const {
  if (row.size() != columns_.size()) {
    return util::InvalidArgument(
        "table " + table_name_ + ": row has " + std::to_string(row.size()) +
        " values, schema has " + std::to_string(columns_.size()) + " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Column& col = columns_[i];
    const Value& v = row[i];
    if (v.is_null()) {
      if (col.not_null) {
        return util::ConstraintViolation("table " + table_name_ + ": column " +
                                         col.name + " is NOT NULL");
      }
      continue;
    }
    const bool type_ok =
        v.type() == col.type ||
        (col.type == ValueType::kReal && v.type() == ValueType::kInt);
    if (!type_ok) {
      return util::InvalidArgument(
          "table " + table_name_ + ": column " + col.name + " expects " +
          ValueTypeName(col.type) + ", got " + ValueTypeName(v.type()));
    }
  }
  return util::Status::Ok();
}

}  // namespace goofi::db
