// A single table: rows plus a hash index on the primary key.
//
// Tables are append-mostly in GOOFI (LoggedSystemState grows by one row per
// experiment, or per instruction in detail mode), so rows live in a stable
// vector with tombstones and the PK index maps key -> slot.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "db/schema.hpp"

namespace goofi::db {

using Row = std::vector<Value>;

/// Hash/equality over a vector of key values.
struct KeyHash {
  size_t operator()(const Row& key) const {
    size_t h = 0x811C9DC5u;
    for (const Value& v : key) h = h * 16777619u ^ v.Hash();
    return h;
  }
};
struct KeyEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

class Table {
 public:
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  /// Number of live rows.
  size_t size() const { return live_count_; }

  /// Inserts a row. Fails on type/NOT NULL mismatch or duplicate primary key.
  /// (Foreign keys are enforced one level up, by Database.)
  util::Status Insert(Row row);

  /// Finds a live row by primary key; returns its slot or nullopt.
  /// Precondition: the schema declares a primary key.
  std::optional<size_t> FindByPrimaryKey(const Row& key) const;

  /// Whether any live row has the given values in the given columns.
  bool ExistsWhere(const std::vector<size_t>& column_indices,
                   const Row& values) const;

  /// Deletes all live rows matching `predicate`; returns the count deleted.
  size_t DeleteWhere(const std::function<bool(const Row&)>& predicate);

  /// Applies `mutate` to all live rows matching `predicate`. The mutated row
  /// is re-validated; on constraint failure the row is left unchanged and the
  /// first error is returned (already-updated rows stay updated, as in SQL
  /// without transactions). Returns number updated via `updated`.
  util::Status UpdateWhere(const std::function<bool(const Row&)>& predicate,
                           const std::function<void(Row&)>& mutate,
                           size_t* updated);

  /// Calls `fn` for every live row. `fn` must not mutate the table.
  void ForEach(const std::function<void(const Row&)>& fn) const;

  /// Snapshot of all live rows (used by SELECT).
  std::vector<Row> Rows() const;

  /// Raw access for persistence: live rows only.
  const std::vector<Row>& slots() const { return rows_; }
  const std::vector<bool>& live() const { return live_; }

 private:
  Row ExtractKey(const Row& row) const;

  Schema schema_;
  std::vector<Row> rows_;
  std::vector<bool> live_;
  size_t live_count_ = 0;
  std::unordered_map<Row, size_t, KeyHash, KeyEq> pk_index_;
};

}  // namespace goofi::db
