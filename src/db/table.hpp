// A single table: rows plus a hash index on the primary key and optional
// secondary indexes.
//
// Tables are append-mostly in GOOFI (LoggedSystemState grows by one row per
// experiment, or per instruction in detail mode), so rows live in a stable
// vector with tombstones and the PK index maps key -> slot. Secondary
// indexes map key -> posting list of slots and are maintained incrementally
// by Insert/DeleteWhere/UpdateWhere.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "db/schema.hpp"

namespace goofi::db {

using Row = std::vector<Value>;

class Table;

/// Receives row-level mutation events from a Table, after the mutation
/// succeeded. The WAL (db/archive) uses this to record logical operations.
/// Callbacks run on the mutating thread and must not mutate the table.
class TableObserver {
 public:
  virtual ~TableObserver() = default;

  /// `row` is the stored row (post-insert).
  virtual void OnInsert(const Table& table, const Row& row) = 0;
  /// Full images of the rows one DeleteWhere call removed, in slot order.
  virtual void OnDelete(const Table& table,
                        const std::vector<Row>& removed) = 0;
  /// (old, new) images of the rows one UpdateWhere call changed, in slot
  /// order. Emitted even when the call later failed mid-scan: rows updated
  /// before the failure stay updated (SQL-without-transactions semantics)
  /// and must be logged.
  virtual void OnUpdate(const Table& table,
                        const std::vector<std::pair<Row, Row>>& changes) = 0;
};

/// Hash/equality over a vector of key values.
struct KeyHash {
  size_t operator()(const Row& key) const {
    size_t h = 0x811C9DC5u;
    for (const Value& v : key) h = h * 16777619u ^ v.Hash();
    return h;
  }
};
struct KeyEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

/// Ordering for sorted indexes: Value::Compare's total order
/// (NULL < numbers < TEXT, INT/REAL compared numerically).
struct ValueLess {
  bool operator()(const Value& a, const Value& b) const {
    return a.Compare(b) < 0;
  }
};

enum class IndexKind {
  kHash,    ///< equality probes; any number of key columns
  kSorted,  ///< equality + range probes; exactly one key column
};

/// A secondary index: key -> posting list of row slots.
///
/// Invariants (checked by Table::ValidateIndexes):
///  - every live slot appears in exactly one posting list, under the key
///    built from its current column values (NULL keys are stored too);
///  - no dead slot appears anywhere;
///  - every posting list is sorted ascending, so an index probe replays
///    rows in physical (= insertion) order — this is what makes indexed
///    execution byte-identical to a full scan.
struct SecondaryIndex {
  std::string name;
  std::vector<size_t> columns;  ///< schema column indices forming the key
  IndexKind kind = IndexKind::kHash;
  std::unordered_map<Row, std::vector<size_t>, KeyHash, KeyEq> hash;
  std::map<Value, std::vector<size_t>, ValueLess> sorted;  ///< kSorted only
};

class Table {
 public:
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  /// Number of live rows.
  size_t size() const { return live_count_; }

  /// Inserts a row. Fails on type/NOT NULL mismatch or duplicate primary key.
  /// (Foreign keys are enforced one level up, by Database.)
  util::Status Insert(Row row);

  /// Pre-sizes the row storage (and PK index) for `total_slots` slots; used
  /// by batch inserts and snapshot loading.
  void Reserve(size_t total_slots);

  /// Attaches (or with nullptr detaches) the mutation observer. At most one
  /// observer; the caller keeps ownership and must outlive the attachment.
  void SetObserver(TableObserver* observer) { observer_ = observer; }
  TableObserver* observer() const { return observer_; }

  /// Finds a live row by primary key; returns its slot or nullopt.
  /// Precondition: the schema declares a primary key.
  std::optional<size_t> FindByPrimaryKey(const Row& key) const;

  /// Whether any live row has the given values in the given columns.
  /// Matching is Compare-based (NULL == NULL), not SQL three-valued logic.
  bool ExistsWhere(const std::vector<size_t>& column_indices,
                   const Row& values) const;

  /// Deletes all live rows matching `predicate`; returns the count deleted.
  size_t DeleteWhere(const std::function<bool(const Row&)>& predicate);

  /// Applies `mutate` to all live rows matching `predicate`. The mutated row
  /// is re-validated; on constraint failure the row is left unchanged and the
  /// first error is returned (already-updated rows stay updated, as in SQL
  /// without transactions). Returns number updated via `updated`.
  util::Status UpdateWhere(const std::function<bool(const Row&)>& predicate,
                           const std::function<void(Row&)>& mutate,
                           size_t* updated);

  /// Calls `fn` for every live row. `fn` must not mutate the table.
  void ForEach(const std::function<void(const Row&)>& fn) const;

  /// Snapshot of all live rows (used by SELECT).
  std::vector<Row> Rows() const;

  /// Raw access for persistence: live rows only.
  const std::vector<Row>& slots() const { return rows_; }
  const std::vector<bool>& live() const { return live_; }

  // --- secondary indexes ----------------------------------------------------

  /// Creates an index over `columns` (names, case-insensitive) and builds it
  /// from the existing rows. kSorted requires exactly one column. Fails on
  /// duplicate name or unknown column.
  util::Status CreateIndex(const std::string& name,
                           const std::vector<std::string>& columns,
                           IndexKind kind);

  util::Status DropIndex(const std::string& name);

  /// The index named `name` (case-insensitive), or nullptr.
  const SecondaryIndex* FindIndex(const std::string& name) const;

  const std::vector<std::unique_ptr<SecondaryIndex>>& indexes() const {
    return indexes_;
  }

  /// Slots whose key equals `key`, ascending; empty vector when none.
  /// Works for both index kinds (kSorted takes a single-value key).
  std::vector<size_t> IndexEqualSlots(const SecondaryIndex& index,
                                      const Row& key) const;

  /// Slots of a kSorted index whose key falls in the given bounds, in
  /// ascending *key* order (caller must re-sort by slot for scan-order
  /// results). NULL keys are always excluded: in SQL, `col < x` is NULL
  /// (never true) for a NULL column even though NULL sorts first here.
  std::vector<size_t> IndexRangeSlots(const SecondaryIndex& index,
                                      const Value* lower, bool lower_inclusive,
                                      const Value* upper,
                                      bool upper_inclusive) const;

  /// Test hook: rebuilds every index from scratch and compares with the
  /// incrementally-maintained state. Returns false and sets `error` on the
  /// first mismatch.
  bool ValidateIndexes(std::string* error) const;

 private:
  Row ExtractKey(const Row& row) const;
  Row IndexKeyOf(const SecondaryIndex& index, const Row& row) const;

  /// Adds/removes `slot` (with its current row values) to/from every index.
  /// RemoveFromIndexes must run before the row is cleared or overwritten.
  void AddToIndexes(size_t slot);
  void RemoveFromIndexes(size_t slot);

  Schema schema_;
  std::vector<Row> rows_;
  std::vector<bool> live_;
  size_t live_count_ = 0;
  std::unordered_map<Row, size_t, KeyHash, KeyEq> pk_index_;
  // unique_ptr for pointer stability: query plans cache SecondaryIndex*.
  std::vector<std::unique_ptr<SecondaryIndex>> indexes_;
  TableObserver* observer_ = nullptr;  ///< not owned
};

}  // namespace goofi::db
