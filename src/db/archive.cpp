#include "db/archive.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/crc32.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace goofi::db {

namespace {

constexpr uint8_t kSnapshotMagic[4] = {0xB1, 'G', 'D', 'B'};
constexpr uint8_t kSnapshotVersion = 1;
// Legacy text files start with this line; their first byte (0x47 'G') never
// collides with the binary magic's 0xB1.
constexpr char kLegacyHeader[] = "GOOFIDB 1";

struct PendingTable {
  Schema schema;
  std::vector<Row> rows;
  struct IndexDef {
    std::string name;
    IndexKind kind = IndexKind::kHash;
    std::vector<std::string> columns;
  };
  std::vector<IndexDef> indexes;
};

/// Builds a Database from parsed tables: fixed-point table creation (the
/// file writes tables alphabetically, so an FK may point forward), plain
/// table inserts (the rows passed FK checks when first written), then the
/// persisted index definitions.
util::Result<Database> AssemblePending(std::vector<PendingTable> pending) {
  Database fresh;
  std::vector<bool> created(pending.size(), false);
  size_t remaining = pending.size();
  while (remaining > 0) {
    bool progress = false;
    for (size_t i = 0; i < pending.size(); ++i) {
      if (created[i]) continue;
      if (fresh.CreateTable(pending[i].schema).ok()) {
        created[i] = true;
        --remaining;
        progress = true;
      }
    }
    if (!progress) {
      return util::ParseError(
          "could not resolve foreign-key table order on load");
    }
  }
  for (auto& pt : pending) {
    Table* table = fresh.GetTable(pt.schema.table_name());
    table->Reserve(pt.rows.size());
    for (auto& row : pt.rows) {
      GOOFI_RETURN_IF_ERROR(table->Insert(std::move(row)));
    }
    for (const auto& def : pt.indexes) {
      GOOFI_RETURN_IF_ERROR(fresh.CreateIndex(pt.schema.table_name(), def.name,
                                              def.columns, def.kind));
    }
  }
  return fresh;
}

// --- legacy text reader (the pre-archive format, kept loading forever) ------

util::Result<Database> ReadLegacyText(const std::string& path,
                                      std::string content) {
  // Split off and verify the CRC trailer.
  const size_t crc_pos = content.rfind("CRC ");
  if (crc_pos == std::string::npos) {
    return util::ParseError("missing CRC trailer");
  }
  const std::string crc_text(util::Trim(content.substr(crc_pos + 4)));
  const std::string body = content.substr(0, crc_pos);
  const auto stored = util::ParseInt("0x" + crc_text);
  if (!stored) return util::ParseError("bad CRC trailer");
  if (static_cast<uint32_t>(*stored) != util::Crc32Of(body)) {
    return util::IoError("CRC mismatch: database file " + path + " is corrupt");
  }

  std::vector<std::string> lines = util::Split(body, '\n');
  size_t pos = 0;
  auto next_line = [&]() -> std::optional<std::string> {
    while (pos < lines.size()) {
      const std::string& line = lines[pos++];
      if (!line.empty()) return line;
    }
    return std::nullopt;
  };

  auto header = next_line();
  if (!header || *header != kLegacyHeader) {
    return util::ParseError("bad database header");
  }

  std::vector<PendingTable> pending;
  for (auto line = next_line(); line.has_value(); line = next_line()) {
    auto head = util::SplitWhitespace(*line);
    if (head.size() != 3 || head[0] != "TABLE") {
      return util::ParseError("expected TABLE, got: " + *line);
    }
    const std::string table_name = util::UnescapeField(head[1]);
    const auto ncols = util::ParseInt(head[2]);
    if (!ncols || *ncols <= 0) return util::ParseError("bad column count");

    std::vector<Column> columns;
    std::vector<std::string> primary_key;
    std::vector<ForeignKey> fks;
    for (int64_t i = 0; i < *ncols; ++i) {
      auto col_line = next_line();
      if (!col_line || !util::StartsWith(*col_line, "COL ")) {
        return util::ParseError("expected COL line");
      }
      auto fields = util::Split(col_line->substr(4), '\t');
      if (fields.size() != 3) return util::ParseError("bad COL line");
      Column col;
      col.name = util::UnescapeField(fields[0]);
      if (fields[1] == "INTEGER") {
        col.type = ValueType::kInt;
      } else if (fields[1] == "REAL") {
        col.type = ValueType::kReal;
      } else if (fields[1] == "TEXT") {
        col.type = ValueType::kText;
      } else {
        return util::ParseError("bad column type " + fields[1]);
      }
      col.not_null = fields[2] == "1";
      columns.push_back(std::move(col));
    }

    // Optional PK / FK lines, then mandatory ROWS.
    std::optional<std::string> line2 = next_line();
    while (line2 &&
           (util::StartsWith(*line2, "PK") || util::StartsWith(*line2, "FK"))) {
      auto fields = util::Split(*line2, '\t');
      if (fields[0] == "PK") {
        for (size_t i = 1; i < fields.size(); ++i) {
          primary_key.push_back(util::UnescapeField(fields[i]));
        }
      } else {
        if (fields.size() < 3) return util::ParseError("bad FK line");
        ForeignKey fk;
        fk.ref_table = util::UnescapeField(fields[1]);
        const auto n = util::ParseInt(fields[2]);
        if (!n || fields.size() != 3 + 2 * static_cast<size_t>(*n)) {
          return util::ParseError("bad FK arity");
        }
        for (int64_t i = 0; i < *n; ++i) {
          fk.local_columns.push_back(
              util::UnescapeField(fields[3 + static_cast<size_t>(i)]));
        }
        for (int64_t i = 0; i < *n; ++i) {
          fk.ref_columns.push_back(
              util::UnescapeField(fields[3 + static_cast<size_t>(*n + i)]));
        }
        fks.push_back(std::move(fk));
      }
      line2 = next_line();
    }
    if (!line2 || !util::StartsWith(*line2, "ROWS ")) {
      return util::ParseError("expected ROWS line");
    }
    const auto nrows = util::ParseInt(line2->substr(5));
    if (!nrows || *nrows < 0) return util::ParseError("bad row count");

    PendingTable pt;
    pt.schema = Schema(table_name, std::move(columns), std::move(primary_key),
                       std::move(fks));
    pt.rows.reserve(static_cast<size_t>(*nrows));
    for (int64_t r = 0; r < *nrows; ++r) {
      auto row_line = next_line();
      if (!row_line) return util::ParseError("unexpected EOF in rows");
      auto fields = util::Split(*row_line, '\t');
      if (fields.size() != static_cast<size_t>(*ncols)) {
        return util::ParseError("row arity mismatch in table " + table_name);
      }
      Row row;
      row.reserve(fields.size());
      for (const auto& field : fields) {
        auto v = Value::Deserialize(util::UnescapeField(field));
        if (!v.ok()) return v.status();
        row.push_back(std::move(v).value());
      }
      pt.rows.push_back(std::move(row));
    }
    auto end_line = next_line();
    if (!end_line || *end_line != "END") return util::ParseError("expected END");
    pending.push_back(std::move(pt));
  }
  return AssemblePending(std::move(pending));
}

// --- binary columnar reader --------------------------------------------------

util::Result<Database> ReadBinarySnapshot(const std::string& path,
                                          const std::string& content,
                                          uint64_t* epoch_out) {
  // Whole-file CRC trailer first: any truncation or flipped byte anywhere
  // (metadata included) is rejected before parsing.
  const size_t header_size = sizeof(kSnapshotMagic) + 1 + 8;
  if (content.size() < header_size + 4) {
    return util::ParseError("binary snapshot too short");
  }
  const std::string_view data(content);
  const std::string_view body = data.substr(0, data.size() - 4);
  uint32_t stored_file_crc = 0;
  {
    PackedReader trailer(data.substr(data.size() - 4));
    trailer.U32(&stored_file_crc);
  }
  if (util::Crc32Of(body) != stored_file_crc) {
    return util::IoError("CRC mismatch: database file " + path + " is corrupt");
  }

  PackedReader r(body);
  {
    uint8_t magic[4] = {};
    for (auto& b : magic) r.U8(&b);
    uint8_t version = 0;
    r.U8(&version);
    if (!r.ok() || std::memcmp(magic, kSnapshotMagic, 4) != 0 ||
        version != kSnapshotVersion) {
      return util::ParseError("bad binary snapshot header");
    }
  }
  uint64_t epoch = 0;
  uint64_t ntables = 0;
  if (!r.U64(&epoch) || !r.Varint(&ntables)) {
    return util::ParseError("bad binary snapshot header");
  }

  std::vector<PendingTable> pending;
  pending.reserve(static_cast<size_t>(ntables));
  for (uint64_t t = 0; t < ntables; ++t) {
    PendingTable pt;
    if (!DecodeSchema(&r, &pt.schema)) {
      return util::ParseError("bad table schema in binary snapshot");
    }
    const size_t ncols = pt.schema.num_columns();
    uint64_t nindexes = 0;
    if (!r.Varint(&nindexes)) return util::ParseError("bad index count");
    for (uint64_t i = 0; i < nindexes; ++i) {
      PendingTable::IndexDef def;
      uint8_t kind = 0;
      uint64_t def_cols = 0;
      if (!r.Str(&def.name) || !r.U8(&kind) ||
          kind > static_cast<uint8_t>(IndexKind::kSorted) ||
          !r.Varint(&def_cols)) {
        return util::ParseError("bad index definition");
      }
      def.kind = static_cast<IndexKind>(kind);
      def.columns.resize(static_cast<size_t>(def_cols));
      for (auto& col : def.columns) {
        if (!r.Str(&col)) return util::ParseError("bad index column");
      }
      pt.indexes.push_back(std::move(def));
    }
    uint64_t nrows = 0;
    if (!r.Varint(&nrows)) return util::ParseError("bad row count");
    if (nrows > body.size()) return util::ParseError("implausible row count");

    pt.rows.assign(static_cast<size_t>(nrows), Row());
    for (auto& row : pt.rows) row.resize(ncols);  // default = NULL

    for (size_t c = 0; c < ncols; ++c) {
      uint32_t seg_len = 0, seg_crc = 0;
      if (!r.U32(&seg_len) || !r.U32(&seg_crc) ||
          seg_len > body.size() - r.pos()) {
        return util::ParseError("bad column segment frame");
      }
      const std::string_view segment = body.substr(r.pos(), seg_len);
      if (util::Crc32Of(segment) != seg_crc) {
        return util::IoError("segment CRC mismatch in table " +
                             pt.schema.table_name() + " column " +
                             pt.schema.columns()[c].name);
      }
      PackedReader seg(segment);
      const size_t bitmap_bytes = (static_cast<size_t>(nrows) + 7) / 8;
      if (!seg.Skip(bitmap_bytes)) {
        return util::ParseError("short null bitmap");
      }
      // Decode the non-NULL values in row order; NULL cells keep the
      // default-constructed Value from the resize above.
      for (uint64_t row = 0; row < nrows; ++row) {
        const uint8_t bits = static_cast<uint8_t>(segment[row / 8]);
        if (((bits >> (row % 8)) & 1) == 0) continue;  // NULL
        Value v;
        if (!seg.Val(&v)) {
          return util::ParseError("bad value in table " +
                                  pt.schema.table_name());
        }
        pt.rows[static_cast<size_t>(row)][c] = std::move(v);
      }
      if (!seg.AtEnd()) {
        return util::ParseError("trailing bytes in column segment");
      }
      // Advance the outer reader past the segment we parsed out-of-line.
      r.Skip(seg_len);
    }
    pending.push_back(std::move(pt));
  }
  if (!r.ok() || !r.AtEnd()) {
    return util::ParseError("trailing bytes in binary snapshot");
  }
  if (epoch_out != nullptr) *epoch_out = epoch;
  return AssemblePending(std::move(pending));
}

}  // namespace

// --- snapshot writer ---------------------------------------------------------

util::Status WriteSnapshotFile(const Database& db, const std::string& path,
                               uint64_t epoch) {
  const std::string tmp_path = path + ".tmp";
  std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
  if (!out) return util::IoError("cannot open " + tmp_path + " for writing");

  // Everything streams through one reusable buffer; the running CRC covers
  // every byte written before the trailer.
  util::Crc32 file_crc;
  std::string buf;
  const auto emit = [&] {
    file_crc.Update(buf);
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    buf.clear();
  };

  const std::vector<std::string> table_names = db.TableNames();
  PackedWriter w(&buf);
  for (uint8_t b : kSnapshotMagic) w.U8(b);
  w.U8(kSnapshotVersion);
  w.U64(epoch);
  w.Varint(table_names.size());
  emit();

  std::string segment;  // reused across columns
  for (const std::string& name : table_names) {
    const Table* table = db.GetTable(name);
    const Schema& schema = table->schema();
    EncodeSchema(&w, schema);
    w.Varint(table->indexes().size());
    for (const auto& index : table->indexes()) {
      w.Str(index->name);
      w.U8(static_cast<uint8_t>(index->kind));
      w.Varint(index->columns.size());
      for (size_t col : index->columns) w.Str(schema.columns()[col].name);
    }
    const std::vector<Row>& slots = table->slots();
    const std::vector<bool>& live = table->live();
    const size_t nrows = table->size();
    w.Varint(nrows);
    emit();

    for (size_t c = 0; c < schema.num_columns(); ++c) {
      segment.clear();
      PackedWriter sw(&segment);
      // Null bitmap over live rows in slot order, LSB-first.
      segment.assign((nrows + 7) / 8, '\0');
      size_t row = 0;
      for (size_t slot = 0; slot < slots.size(); ++slot) {
        if (!live[slot]) continue;
        if (!slots[slot][c].is_null()) {
          segment[row / 8] = static_cast<char>(
              static_cast<uint8_t>(segment[row / 8]) | (1u << (row % 8)));
        }
        ++row;
      }
      for (size_t slot = 0; slot < slots.size(); ++slot) {
        if (!live[slot]) continue;
        if (!slots[slot][c].is_null()) sw.Val(slots[slot][c]);
      }
      w.U32(static_cast<uint32_t>(segment.size()));
      w.U32(util::Crc32Of(segment));
      emit();
      file_crc.Update(segment);
      out.write(segment.data(), static_cast<std::streamsize>(segment.size()));
    }
  }

  w.U32(file_crc.Value());
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  out.flush();
  if (!out) return util::IoError("write failed for " + tmp_path);
  out.close();

  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    return util::IoError("cannot rename " + tmp_path + " to " + path + ": " +
                         ec.message());
  }
  return util::Status::Ok();
}

util::Result<LoadedSnapshot> ReadSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::IoError("cannot open " + path);
  std::ostringstream stream;
  stream << in.rdbuf();
  std::string content = stream.str();

  LoadedSnapshot loaded;
  if (!content.empty() &&
      static_cast<uint8_t>(content[0]) == kSnapshotMagic[0]) {
    auto db = ReadBinarySnapshot(path, content, &loaded.epoch);
    if (!db.ok()) return db.status();
    loaded.db = std::move(db).value();
    return loaded;
  }
  auto db = ReadLegacyText(path, std::move(content));
  if (!db.ok()) return db.status();
  loaded.db = std::move(db).value();
  loaded.legacy_text = true;
  loaded.epoch = 0;
  return loaded;
}

// --- Archive -----------------------------------------------------------------

Archive::Archive(Database* db, std::string path, ArchiveOptions options)
    : db_(db), path_(std::move(path)), options_(options) {
  auto_commit_ = options_.auto_commit;
}

util::Result<std::unique_ptr<Archive>> Archive::Open(Database* db,
                                                     const std::string& path,
                                                     ArchiveOptions options) {
  std::unique_ptr<Archive> archive(new Archive(db, path, options));
  std::error_code ec;
  const bool exists = std::filesystem::exists(path, ec);

  uint64_t epoch = 0;
  if (exists) {
    bool legacy = false;
    GOOFI_RETURN_IF_ERROR(db->Load(path, &epoch, &legacy));
    archive->stats_.loaded_legacy_text = legacy;
    if (legacy) {
      // Convert in place: the WAL's epoch scheme needs a binary snapshot,
      // and later opens should skip the text parser. A legacy file cannot
      // have a live WAL, so any leftover one is foreign — drop it.
      GOOFI_RETURN_IF_ERROR(WriteSnapshotFile(*db, path, epoch));
      std::filesystem::remove(path + ".wal", ec);
    }
  } else {
    // Fresh archive: the initial snapshot is the database as it stands, and
    // any leftover WAL (from a deleted snapshot) belongs to nothing now.
    GOOFI_RETURN_IF_ERROR(WriteSnapshotFile(*db, path, epoch));
    std::filesystem::remove(path + ".wal", ec);
  }
  const auto size = std::filesystem::file_size(path, ec);
  archive->stats_.snapshot_bytes = ec ? 0 : size;

  // Replay the WAL into the database before attaching as observer (replay
  // must not re-log itself).
  auto wal_result = archive->wal_.Open(path + ".wal", epoch, db);
  if (!wal_result.ok()) return wal_result.status();
  const Wal::OpenResult& recovered = wal_result.value();
  archive->epoch_ = epoch;
  archive->stats_.epoch = epoch;
  archive->stats_.wal_records_replayed = recovered.records_replayed;
  archive->stats_.wal_bytes_truncated = recovered.bytes_truncated;
  archive->stats_.recovered_torn_tail = recovered.torn_tail;
  archive->stats_.stale_wal_discarded = recovered.stale_discarded;
  archive->stats_.wal_bytes = archive->wal_.bytes();

  db->SetObserver(archive.get());
  archive->attached_ = true;
  return archive;
}

Archive::~Archive() { (void)Close(); }

util::Status Archive::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  util::Status st = util::Status::Ok();
  if (attached_) {
    st = CommitLocked();
    db_->SetObserver(nullptr);
    attached_ = false;
  }
  return st;
}

util::Status Archive::Commit() {
  std::lock_guard<std::mutex> lock(mutex_);
  return CommitLocked();
}

util::Status Archive::CommitLocked() {
  if (!error_.ok()) return error_;
  const bool had_pending = wal_.pending_bytes() > 0;
  GOOFI_RETURN_IF_ERROR(wal_.Flush());
  if (had_pending) ++stats_.wal_commits;
  stats_.wal_bytes = wal_.bytes();
  if (options_.auto_checkpoint) {
    const uint64_t threshold = std::max<uint64_t>(
        options_.min_fold_bytes,
        static_cast<uint64_t>(options_.fold_ratio *
                              static_cast<double>(stats_.snapshot_bytes)));
    if (wal_.bytes() > threshold) return CheckpointLocked();
  }
  return util::Status::Ok();
}

util::Status Archive::Checkpoint() {
  std::lock_guard<std::mutex> lock(mutex_);
  GOOFI_RETURN_IF_ERROR(CommitLocked());
  return CheckpointLocked();
}

util::Status Archive::CheckpointLocked() {
  // Fold: snapshot the whole database under the next epoch (atomic rename),
  // then reset the WAL. The unreachable middle state — new-epoch snapshot,
  // old-epoch WAL — is exactly what Open discards as stale, so a crash
  // between the two steps recovers to the checkpointed image.
  const uint64_t next_epoch = epoch_ + 1;
  GOOFI_RETURN_IF_ERROR(WriteSnapshotFile(*db_, path_, next_epoch));
  GOOFI_RETURN_IF_ERROR(wal_.Reset(next_epoch));
  epoch_ = next_epoch;
  stats_.epoch = next_epoch;
  ++stats_.checkpoints_folded;
  stats_.wal_bytes = wal_.bytes();
  std::error_code ec;
  const auto size = std::filesystem::file_size(path_, ec);
  stats_.snapshot_bytes = ec ? 0 : size;
  return util::Status::Ok();
}

void Archive::SetAutoCommit(bool on) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto_commit_ = on;
}

ArchiveStats Archive::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ArchiveStats copy = stats_;
  copy.wal_records_appended = wal_.records_appended();
  return copy;
}

void Archive::AppendLocked(WalOp op, const std::string& body) {
  wal_.Append(op, body);
  if (auto_commit_) {
    const util::Status st = CommitLocked();
    if (!st.ok() && error_.ok()) {
      error_ = st;
      util::Log::Error("archive " + path_ + ": " + st.ToString());
    }
  }
}

void Archive::OnInsert(const Table& table, const Row& row) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (in_batch_) {
    PackedWriter w(&batch_rows_);
    w.RowData(row);
    ++batch_count_;
    return;
  }
  std::string body;
  PackedWriter w(&body);
  w.Str(table.schema().table_name());
  w.RowData(row);
  AppendLocked(WalOp::kInsert, body);
}

void Archive::OnDelete(const Table& table, const std::vector<Row>& removed) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Deletes inside a batch bracket are the rollback of rows whose inserts
  // are also in the bracket; the batch record is dropped, so net zero.
  if (in_batch_) return;
  std::string body;
  PackedWriter w(&body);
  w.Str(table.schema().table_name());
  w.Varint(removed.size());
  for (const Row& row : removed) w.RowData(row);
  AppendLocked(WalOp::kDelete, body);
}

void Archive::OnUpdate(const Table& table,
                       const std::vector<std::pair<Row, Row>>& changes) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string body;
  PackedWriter w(&body);
  w.Str(table.schema().table_name());
  w.Varint(changes.size());
  for (const auto& [old_row, new_row] : changes) {
    w.RowData(old_row);
    w.RowData(new_row);
  }
  AppendLocked(WalOp::kUpdate, body);
}

void Archive::OnInsertBatchBegin(const Table& table) {
  (void)table;
  std::lock_guard<std::mutex> lock(mutex_);
  in_batch_ = true;
  batch_rows_.clear();
  batch_count_ = 0;
}

void Archive::OnInsertBatchEnd(const Table& table, bool committed) {
  std::lock_guard<std::mutex> lock(mutex_);
  in_batch_ = false;
  if (!committed || batch_count_ == 0) {
    batch_rows_.clear();
    return;
  }
  std::string body;
  body.reserve(batch_rows_.size() + table.schema().table_name().size() + 16);
  PackedWriter w(&body);
  w.Str(table.schema().table_name());
  w.Varint(batch_count_);
  body.append(batch_rows_);
  batch_rows_.clear();
  AppendLocked(WalOp::kInsertBatch, body);
}

void Archive::OnCreateTable(const Schema& schema) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string body;
  PackedWriter w(&body);
  EncodeSchema(&w, schema);
  AppendLocked(WalOp::kCreateTable, body);
}

void Archive::OnDropTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string body;
  PackedWriter w(&body);
  w.Str(name);
  AppendLocked(WalOp::kDropTable, body);
}

void Archive::OnCreateIndex(const Table& table, const std::string& name,
                            const std::vector<std::string>& columns,
                            IndexKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string body;
  PackedWriter w(&body);
  w.Str(table.schema().table_name());
  w.Str(name);
  w.Varint(columns.size());
  for (const std::string& col : columns) w.Str(col);
  w.U8(static_cast<uint8_t>(kind));
  AppendLocked(WalOp::kCreateIndex, body);
}

void Archive::OnDropIndex(const Table& table, const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string body;
  PackedWriter w(&body);
  w.Str(table.schema().table_name());
  w.Str(name);
  AppendLocked(WalOp::kDropIndex, body);
}

Archive::GroupCommitScope::GroupCommitScope(Archive* archive)
    : archive_(archive) {
  std::lock_guard<std::mutex> lock(archive_->mutex_);
  previous_ = archive_->auto_commit_;
  archive_->auto_commit_ = false;
}

Archive::GroupCommitScope::~GroupCommitScope() {
  // Errors stay latched in the archive and surface on the next Commit().
  (void)archive_->Commit();
  std::lock_guard<std::mutex> lock(archive_->mutex_);
  archive_->auto_commit_ = previous_;
}

}  // namespace goofi::db
