#include "db/prepared.hpp"

#include "db/sql_parser.hpp"

namespace goofi::db {

PreparedStatement::PreparedStatement(std::string sql, Statement statement)
    : sql_(std::move(sql)),
      statement_(std::move(statement)),
      params_expected_(CountStatementParams(statement_)) {}

util::Result<std::shared_ptr<PreparedStatement>> PreparedStatement::Prepare(
    const std::string& sql) {
  auto statement = ParseSql(sql);
  if (!statement.ok()) return statement.status();
  return std::shared_ptr<PreparedStatement>(
      new PreparedStatement(sql, std::move(statement).value()));
}

util::Result<QueryResult> PreparedStatement::Execute(
    Database& database, const std::vector<Value>& params) {
  if (params.size() != params_expected_) {
    return util::InvalidArgument(
        "statement expects " + std::to_string(params_expected_) +
        " parameter(s), got " + std::to_string(params.size()));
  }
  ExecOptions options;
  options.params = &params;

  const auto* select = std::get_if<SelectStmt>(&statement_);
  if (select == nullptr) {
    return ExecuteStatement(database, statement_, options);
  }

  // Reuse the cached plan when it was built for this database at its current
  // schema version; otherwise replan. The plan is copied out so the lock is
  // not held across execution.
  SelectPlan plan;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!plan_valid_ || plan_database_ != &database ||
        plan_version_ != database.schema_version()) {
      plan_ = PlanSelect(database, *select);
      plan_database_ = &database;
      plan_version_ = database.schema_version();
      plan_valid_ = true;
      ++plans_built_;
    }
    plan = plan_;
  }
  return ExecuteStatement(database, statement_, options, &plan);
}

uint64_t PreparedStatement::plans_built() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plans_built_;
}

util::Result<std::shared_ptr<PreparedStatement>> StatementCache::Get(
    const std::string& sql) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = cache_.find(sql);
    if (it != cache_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
  }
  // Parse outside the lock; parsing is the expensive part.
  auto prepared = PreparedStatement::Prepare(sql);
  if (!prepared.ok()) return prepared.status();
  std::lock_guard<std::mutex> lock(mutex_);
  if (cache_.size() >= capacity_) cache_.clear();
  auto [it, inserted] = cache_.emplace(sql, std::move(prepared).value());
  return it->second;
}

util::Result<QueryResult> StatementCache::Execute(
    Database& database, const std::string& sql,
    const std::vector<Value>& params) {
  auto prepared = Get(sql);
  if (!prepared.ok()) return prepared.status();
  return prepared.value()->Execute(database, params);
}

uint64_t StatementCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

uint64_t StatementCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

size_t StatementCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

void StatementCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.clear();
}

}  // namespace goofi::db
