#include "db/database.hpp"

#include <fstream>
#include <sstream>
#include <unordered_set>

#include "util/crc32.hpp"
#include "util/strings.hpp"

namespace goofi::db {

namespace {
std::string LowerName(const std::string& name) { return util::ToLower(name); }
}  // namespace

util::Status Database::CreateTable(Schema schema) {
  GOOFI_RETURN_IF_ERROR(schema.Validate());
  const std::string key = LowerName(schema.table_name());
  if (tables_.contains(key)) {
    return util::AlreadyExists("table " + schema.table_name() + " already exists");
  }
  // Validate foreign keys against existing tables (self-references allowed).
  for (const ForeignKey& fk : schema.foreign_keys()) {
    const Table* ref = GetTable(fk.ref_table);
    const Schema* ref_schema = nullptr;
    if (util::EqualsIgnoreCase(fk.ref_table, schema.table_name())) {
      ref_schema = &schema;
    } else if (ref != nullptr) {
      ref_schema = &ref->schema();
    } else {
      return util::InvalidArgument("foreign key references unknown table " +
                                   fk.ref_table);
    }
    for (const auto& col : fk.ref_columns) {
      if (!ref_schema->ColumnIndex(col)) {
        return util::InvalidArgument("foreign key references unknown column " +
                                     fk.ref_table + "." + col);
      }
    }
  }
  tables_.emplace(key, std::make_unique<Table>(std::move(schema)));
  ++schema_version_;
  return util::Status::Ok();
}

util::Status Database::DropTable(const std::string& name) {
  const auto it = tables_.find(LowerName(name));
  if (it == tables_.end()) return util::NotFound("no table " + name);
  // RESTRICT: refuse to drop while another table declares an FK to it.
  for (const auto& [key, table] : tables_) {
    if (key == it->first) continue;
    for (const ForeignKey& fk : table->schema().foreign_keys()) {
      if (util::EqualsIgnoreCase(fk.ref_table, name)) {
        return util::ConstraintViolation("table " + name + " is referenced by " +
                                         table->schema().table_name());
      }
    }
  }
  tables_.erase(it);
  ++schema_version_;
  return util::Status::Ok();
}

util::Status Database::CreateIndex(const std::string& table,
                                   const std::string& name,
                                   const std::vector<std::string>& columns,
                                   IndexKind kind) {
  Table* t = GetTable(table);
  if (t == nullptr) return util::NotFound("no table " + table);
  GOOFI_RETURN_IF_ERROR(t->CreateIndex(name, columns, kind));
  ++schema_version_;
  return util::Status::Ok();
}

util::Status Database::DropIndex(const std::string& table,
                                 const std::string& name) {
  Table* t = GetTable(table);
  if (t == nullptr) return util::NotFound("no table " + table);
  GOOFI_RETURN_IF_ERROR(t->DropIndex(name));
  ++schema_version_;
  return util::Status::Ok();
}

bool Database::HasTable(const std::string& name) const {
  return tables_.contains(LowerName(name));
}

Table* Database::GetTable(const std::string& name) {
  const auto it = tables_.find(LowerName(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::GetTable(const std::string& name) const {
  const auto it = tables_.find(LowerName(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->schema().table_name());
  return names;
}

util::Status Database::CheckForeignKeysOnInsert(const Table& table,
                                                const Row& row) const {
  for (const ForeignKey& fk : table.schema().foreign_keys()) {
    Row values;
    values.reserve(fk.local_columns.size());
    bool any_null = false;
    for (const auto& col : fk.local_columns) {
      const Value& v = row[*table.schema().ColumnIndex(col)];
      if (v.is_null()) any_null = true;
      values.push_back(v);
    }
    if (any_null) continue;  // SQL: NULL FK values are not checked
    const Table* ref = GetTable(fk.ref_table);
    if (ref == nullptr) {
      return util::Internal("foreign key references dropped table " + fk.ref_table);
    }
    std::vector<size_t> ref_indices;
    ref_indices.reserve(fk.ref_columns.size());
    for (const auto& col : fk.ref_columns) {
      ref_indices.push_back(*ref->schema().ColumnIndex(col));
    }
    if (!ref->ExistsWhere(ref_indices, values)) {
      return util::ConstraintViolation(
          "foreign key violation: " + table.schema().table_name() + " -> " +
          fk.ref_table + " (no matching referenced row)");
    }
  }
  return util::Status::Ok();
}

util::Status Database::Insert(const std::string& table_name, Row row) {
  Table* table = GetTable(table_name);
  if (table == nullptr) return util::NotFound("no table " + table_name);
  GOOFI_RETURN_IF_ERROR(table->schema().CheckRow(row));
  GOOFI_RETURN_IF_ERROR(CheckForeignKeysOnInsert(*table, row));
  return table->Insert(std::move(row));
}

util::Status Database::InsertBatch(const std::string& table_name,
                                   std::vector<Row> rows) {
  Table* table = GetTable(table_name);
  if (table == nullptr) return util::NotFound("no table " + table_name);
  const Schema& schema = table->schema();

  // Resolve every foreign key's local/referenced column indices once.
  struct ResolvedFk {
    const Table* ref_table = nullptr;
    std::vector<size_t> local_indices;
    std::vector<size_t> ref_indices;
    std::unordered_set<Row, KeyHash, KeyEq> verified;  ///< per-batch memo
  };
  std::vector<ResolvedFk> fks;
  fks.reserve(schema.foreign_keys().size());
  for (const ForeignKey& fk : schema.foreign_keys()) {
    ResolvedFk resolved;
    resolved.ref_table = GetTable(fk.ref_table);
    if (resolved.ref_table == nullptr) {
      return util::Internal("foreign key references dropped table " +
                            fk.ref_table);
    }
    for (const auto& col : fk.local_columns) {
      resolved.local_indices.push_back(*schema.ColumnIndex(col));
    }
    for (const auto& col : fk.ref_columns) {
      resolved.ref_indices.push_back(*resolved.ref_table->schema().ColumnIndex(col));
    }
    fks.push_back(std::move(resolved));
  }

  // Insert in order; a row may reference an earlier row of the same batch
  // because FK checks run against the table as it grows.
  std::vector<Row> inserted_keys;
  const bool has_pk = !schema.primary_key_indices().empty();
  if (has_pk) inserted_keys.reserve(rows.size());
  util::Status error = util::Status::Ok();
  for (Row& row : rows) {
    error = schema.CheckRow(row);
    if (!error.ok()) break;
    for (ResolvedFk& fk : fks) {
      Row values;
      values.reserve(fk.local_indices.size());
      bool any_null = false;
      for (size_t idx : fk.local_indices) {
        if (row[idx].is_null()) any_null = true;
        values.push_back(row[idx]);
      }
      if (any_null) continue;  // SQL: NULL FK values are not checked
      if (fk.verified.contains(values)) continue;
      if (!fk.ref_table->ExistsWhere(fk.ref_indices, values)) {
        error = util::ConstraintViolation(
            "foreign key violation: " + schema.table_name() + " -> " +
            fk.ref_table->schema().table_name() + " (no matching referenced row)");
        break;
      }
      fk.verified.insert(std::move(values));
    }
    if (!error.ok()) break;
    if (has_pk) {
      Row key;
      key.reserve(schema.primary_key_indices().size());
      for (size_t idx : schema.primary_key_indices()) key.push_back(row[idx]);
      error = table->Insert(std::move(row));
      if (!error.ok()) break;
      inserted_keys.push_back(std::move(key));
    } else {
      error = table->Insert(std::move(row));
      if (!error.ok()) break;
    }
  }
  if (error.ok()) return error;

  // All-or-nothing: undo this batch's inserts (possible only with a primary
  // key to identify them; all GOOFI tables declare one).
  if (has_pk && !inserted_keys.empty()) {
    const auto& pk_indices = schema.primary_key_indices();
    std::unordered_set<Row, KeyHash, KeyEq> doomed(inserted_keys.begin(),
                                                   inserted_keys.end());
    table->DeleteWhere([&](const Row& row) {
      Row key;
      key.reserve(pk_indices.size());
      for (size_t idx : pk_indices) key.push_back(row[idx]);
      return doomed.contains(key);
    });
  }
  return error;
}

bool Database::IsReferenced(const std::string& table_name, const Table& table,
                            const Row& row) const {
  for (const auto& [key, other] : tables_) {
    for (const ForeignKey& fk : other->schema().foreign_keys()) {
      if (!util::EqualsIgnoreCase(fk.ref_table, table_name)) continue;
      Row referenced_values;
      referenced_values.reserve(fk.ref_columns.size());
      for (const auto& col : fk.ref_columns) {
        referenced_values.push_back(row[*table.schema().ColumnIndex(col)]);
      }
      std::vector<size_t> local_indices;
      local_indices.reserve(fk.local_columns.size());
      for (const auto& col : fk.local_columns) {
        local_indices.push_back(*other->schema().ColumnIndex(col));
      }
      if (other->ExistsWhere(local_indices, referenced_values)) return true;
    }
  }
  return false;
}

util::Status Database::Delete(const std::string& table_name,
                              const std::function<bool(const Row&)>& predicate,
                              size_t* deleted) {
  Table* table = GetTable(table_name);
  if (table == nullptr) return util::NotFound("no table " + table_name);
  // First pass: verify none of the doomed rows are referenced (RESTRICT).
  util::Status st = util::Status::Ok();
  table->ForEach([&](const Row& row) {
    if (!st.ok() || !predicate(row)) return;
    if (IsReferenced(table_name, *table, row)) {
      st = util::ConstraintViolation("delete from " + table_name +
                                     " blocked: row is referenced");
    }
  });
  GOOFI_RETURN_IF_ERROR(st);
  const size_t n = table->DeleteWhere(predicate);
  if (deleted != nullptr) *deleted = n;
  return util::Status::Ok();
}

// ---------------------------------------------------------------------------
// Persistence. Line-oriented text with tab-separated escaped fields and a
// CRC32 trailer so a truncated or corrupted file is rejected on load.
// ---------------------------------------------------------------------------

util::Status Database::Save(const std::string& path) const {
  std::ostringstream body;
  body << "GOOFIDB 1\n";
  for (const auto& [key, table] : tables_) {
    const Schema& schema = table->schema();
    body << "TABLE " << util::EscapeField(schema.table_name()) << " "
         << schema.num_columns() << "\n";
    for (const Column& col : schema.columns()) {
      body << "COL " << util::EscapeField(col.name) << "\t"
           << ValueTypeName(col.type) << "\t" << (col.not_null ? 1 : 0) << "\n";
    }
    if (!schema.primary_key().empty()) {
      body << "PK";
      for (const auto& col : schema.primary_key()) body << "\t" << util::EscapeField(col);
      body << "\n";
    }
    for (const ForeignKey& fk : schema.foreign_keys()) {
      body << "FK\t" << util::EscapeField(fk.ref_table) << "\t"
           << fk.local_columns.size();
      for (const auto& col : fk.local_columns) body << "\t" << util::EscapeField(col);
      for (const auto& col : fk.ref_columns) body << "\t" << util::EscapeField(col);
      body << "\n";
    }
    body << "ROWS " << table->size() << "\n";
    table->ForEach([&body](const Row& row) {
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) body << "\t";
        body << util::EscapeField(row[i].Serialize());
      }
      body << "\n";
    });
    body << "END\n";
  }
  const std::string content = body.str();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return util::IoError("cannot open " + path + " for writing");
  out << content;
  out << "CRC " << util::Format("%08x", util::Crc32Of(content)) << "\n";
  out.flush();
  if (!out) return util::IoError("write failed for " + path);
  return util::Status::Ok();
}

util::Status Database::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string content = buf.str();

  // Split off and verify the CRC trailer.
  const size_t crc_pos = content.rfind("CRC ");
  if (crc_pos == std::string::npos) return util::ParseError("missing CRC trailer");
  const std::string crc_text(util::Trim(content.substr(crc_pos + 4)));
  const std::string body = content.substr(0, crc_pos);
  const auto stored = util::ParseInt("0x" + crc_text);
  if (!stored) return util::ParseError("bad CRC trailer");
  if (static_cast<uint32_t>(*stored) != util::Crc32Of(body)) {
    return util::IoError("CRC mismatch: database file " + path + " is corrupt");
  }

  std::vector<std::string> lines = util::Split(body, '\n');
  size_t pos = 0;
  auto next_line = [&]() -> std::optional<std::string> {
    while (pos < lines.size()) {
      const std::string& line = lines[pos++];
      if (!line.empty()) return line;
    }
    return std::nullopt;
  };

  auto header = next_line();
  if (!header || *header != "GOOFIDB 1") {
    return util::ParseError("bad database header");
  }

  // Two-phase load: create all tables first without FK validation against
  // load order, then insert rows (FK checks need referenced tables present;
  // our file writes tables alphabetically so a forward reference is possible).
  struct PendingTable {
    Schema schema;
    std::vector<Row> rows;
  };
  std::vector<PendingTable> pending;

  for (auto line = next_line(); line.has_value(); line = next_line()) {
    auto head = util::SplitWhitespace(*line);
    if (head.size() != 3 || head[0] != "TABLE") {
      return util::ParseError("expected TABLE, got: " + *line);
    }
    const std::string table_name = util::UnescapeField(head[1]);
    const auto ncols = util::ParseInt(head[2]);
    if (!ncols || *ncols <= 0) return util::ParseError("bad column count");

    std::vector<Column> columns;
    std::vector<std::string> primary_key;
    std::vector<ForeignKey> fks;
    for (int64_t i = 0; i < *ncols; ++i) {
      auto col_line = next_line();
      if (!col_line || !util::StartsWith(*col_line, "COL ")) {
        return util::ParseError("expected COL line");
      }
      auto fields = util::Split(col_line->substr(4), '\t');
      if (fields.size() != 3) return util::ParseError("bad COL line");
      Column col;
      col.name = util::UnescapeField(fields[0]);
      if (fields[1] == "INTEGER") {
        col.type = ValueType::kInt;
      } else if (fields[1] == "REAL") {
        col.type = ValueType::kReal;
      } else if (fields[1] == "TEXT") {
        col.type = ValueType::kText;
      } else {
        return util::ParseError("bad column type " + fields[1]);
      }
      col.not_null = fields[2] == "1";
      columns.push_back(std::move(col));
    }

    // Optional PK / FK lines, then mandatory ROWS.
    std::optional<std::string> line2 = next_line();
    while (line2 && (util::StartsWith(*line2, "PK") || util::StartsWith(*line2, "FK"))) {
      auto fields = util::Split(*line2, '\t');
      if (fields[0] == "PK") {
        for (size_t i = 1; i < fields.size(); ++i) {
          primary_key.push_back(util::UnescapeField(fields[i]));
        }
      } else {
        if (fields.size() < 3) return util::ParseError("bad FK line");
        ForeignKey fk;
        fk.ref_table = util::UnescapeField(fields[1]);
        const auto n = util::ParseInt(fields[2]);
        if (!n || fields.size() != 3 + 2 * static_cast<size_t>(*n)) {
          return util::ParseError("bad FK arity");
        }
        for (int64_t i = 0; i < *n; ++i) {
          fk.local_columns.push_back(util::UnescapeField(fields[3 + static_cast<size_t>(i)]));
        }
        for (int64_t i = 0; i < *n; ++i) {
          fk.ref_columns.push_back(
              util::UnescapeField(fields[3 + static_cast<size_t>(*n + i)]));
        }
        fks.push_back(std::move(fk));
      }
      line2 = next_line();
    }
    if (!line2 || !util::StartsWith(*line2, "ROWS ")) {
      return util::ParseError("expected ROWS line");
    }
    const auto nrows = util::ParseInt(line2->substr(5));
    if (!nrows || *nrows < 0) return util::ParseError("bad row count");

    PendingTable pt;
    pt.schema = Schema(table_name, std::move(columns), std::move(primary_key),
                       std::move(fks));
    for (int64_t r = 0; r < *nrows; ++r) {
      auto row_line = next_line();
      if (!row_line) return util::ParseError("unexpected EOF in rows");
      auto fields = util::Split(*row_line, '\t');
      if (fields.size() != static_cast<size_t>(*ncols)) {
        return util::ParseError("row arity mismatch in table " + table_name);
      }
      Row row;
      row.reserve(fields.size());
      for (const auto& field : fields) {
        auto v = Value::Deserialize(util::UnescapeField(field));
        if (!v.ok()) return v.status();
        row.push_back(std::move(v).value());
      }
      pt.rows.push_back(std::move(row));
    }
    auto end_line = next_line();
    if (!end_line || *end_line != "END") return util::ParseError("expected END");
    pending.push_back(std::move(pt));
  }

  // Commit: build a fresh database, then swap.
  Database fresh;
  // Create tables ignoring FK-target ordering by creating all schemas with
  // FKs deferred, then re-attaching. Simpler: create in an order where
  // references resolve; fall back to direct table creation bypassing the FK
  // target check by creating referenced tables first via fixed-point loop.
  std::vector<bool> created(pending.size(), false);
  size_t remaining = pending.size();
  while (remaining > 0) {
    bool progress = false;
    for (size_t i = 0; i < pending.size(); ++i) {
      if (created[i]) continue;
      if (fresh.CreateTable(pending[i].schema).ok()) {
        created[i] = true;
        --remaining;
        progress = true;
      }
    }
    if (!progress) {
      return util::ParseError("could not resolve foreign-key table order on load");
    }
  }
  // Insert rows with plain table inserts (data already passed FK checks when
  // first written; re-checking would require reference-order row sorting).
  for (auto& pt : pending) {
    Table* table = fresh.GetTable(pt.schema.table_name());
    for (auto& row : pt.rows) {
      GOOFI_RETURN_IF_ERROR(table->Insert(std::move(row)));
    }
  }
  // Indexes are in-memory only; callers that rely on automatic indexes
  // (core::CampaignStore::EnsureSchema) must re-create them after Load. The
  // version bump below invalidates every cached plan either way.
  const uint64_t version = schema_version_;
  *this = std::move(fresh);
  schema_version_ = version + 1;
  return util::Status::Ok();
}

}  // namespace goofi::db
