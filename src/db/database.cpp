#include "db/database.hpp"

#include <fstream>
#include <sstream>
#include <unordered_set>

#include "db/archive.hpp"
#include "util/crc32.hpp"
#include "util/strings.hpp"

namespace goofi::db {

namespace {
std::string LowerName(const std::string& name) { return util::ToLower(name); }
}  // namespace

util::Status Database::CreateTable(Schema schema) {
  GOOFI_RETURN_IF_ERROR(schema.Validate());
  const std::string key = LowerName(schema.table_name());
  if (tables_.contains(key)) {
    return util::AlreadyExists("table " + schema.table_name() + " already exists");
  }
  // Validate foreign keys against existing tables (self-references allowed).
  for (const ForeignKey& fk : schema.foreign_keys()) {
    const Table* ref = GetTable(fk.ref_table);
    const Schema* ref_schema = nullptr;
    if (util::EqualsIgnoreCase(fk.ref_table, schema.table_name())) {
      ref_schema = &schema;
    } else if (ref != nullptr) {
      ref_schema = &ref->schema();
    } else {
      return util::InvalidArgument("foreign key references unknown table " +
                                   fk.ref_table);
    }
    for (const auto& col : fk.ref_columns) {
      if (!ref_schema->ColumnIndex(col)) {
        return util::InvalidArgument("foreign key references unknown column " +
                                     fk.ref_table + "." + col);
      }
    }
  }
  auto table = std::make_unique<Table>(std::move(schema));
  table->SetObserver(observer_);
  const Table* created = table.get();
  tables_.emplace(key, std::move(table));
  ++schema_version_;
  if (observer_ != nullptr) observer_->OnCreateTable(created->schema());
  return util::Status::Ok();
}

util::Status Database::DropTable(const std::string& name) {
  const auto it = tables_.find(LowerName(name));
  if (it == tables_.end()) return util::NotFound("no table " + name);
  // RESTRICT: refuse to drop while another table declares an FK to it.
  for (const auto& [key, table] : tables_) {
    if (key == it->first) continue;
    for (const ForeignKey& fk : table->schema().foreign_keys()) {
      if (util::EqualsIgnoreCase(fk.ref_table, name)) {
        return util::ConstraintViolation("table " + name + " is referenced by " +
                                         table->schema().table_name());
      }
    }
  }
  const std::string declared_name = it->second->schema().table_name();
  tables_.erase(it);
  ++schema_version_;
  if (observer_ != nullptr) observer_->OnDropTable(declared_name);
  return util::Status::Ok();
}

util::Status Database::CreateIndex(const std::string& table,
                                   const std::string& name,
                                   const std::vector<std::string>& columns,
                                   IndexKind kind) {
  Table* t = GetTable(table);
  if (t == nullptr) return util::NotFound("no table " + table);
  GOOFI_RETURN_IF_ERROR(t->CreateIndex(name, columns, kind));
  ++schema_version_;
  if (observer_ != nullptr) observer_->OnCreateIndex(*t, name, columns, kind);
  return util::Status::Ok();
}

util::Status Database::DropIndex(const std::string& table,
                                 const std::string& name) {
  Table* t = GetTable(table);
  if (t == nullptr) return util::NotFound("no table " + table);
  GOOFI_RETURN_IF_ERROR(t->DropIndex(name));
  ++schema_version_;
  if (observer_ != nullptr) observer_->OnDropIndex(*t, name);
  return util::Status::Ok();
}

void Database::SetObserver(DatabaseObserver* observer) {
  observer_ = observer;
  for (const auto& [key, table] : tables_) table->SetObserver(observer);
}

bool Database::HasTable(const std::string& name) const {
  return tables_.contains(LowerName(name));
}

Table* Database::GetTable(const std::string& name) {
  const auto it = tables_.find(LowerName(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::GetTable(const std::string& name) const {
  const auto it = tables_.find(LowerName(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->schema().table_name());
  return names;
}

util::Status Database::CheckForeignKeysOnInsert(const Table& table,
                                                const Row& row) const {
  for (const ForeignKey& fk : table.schema().foreign_keys()) {
    Row values;
    values.reserve(fk.local_columns.size());
    bool any_null = false;
    for (const auto& col : fk.local_columns) {
      const Value& v = row[*table.schema().ColumnIndex(col)];
      if (v.is_null()) any_null = true;
      values.push_back(v);
    }
    if (any_null) continue;  // SQL: NULL FK values are not checked
    const Table* ref = GetTable(fk.ref_table);
    if (ref == nullptr) {
      return util::Internal("foreign key references dropped table " + fk.ref_table);
    }
    std::vector<size_t> ref_indices;
    ref_indices.reserve(fk.ref_columns.size());
    for (const auto& col : fk.ref_columns) {
      ref_indices.push_back(*ref->schema().ColumnIndex(col));
    }
    if (!ref->ExistsWhere(ref_indices, values)) {
      return util::ConstraintViolation(
          "foreign key violation: " + table.schema().table_name() + " -> " +
          fk.ref_table + " (no matching referenced row)");
    }
  }
  return util::Status::Ok();
}

util::Status Database::Insert(const std::string& table_name, Row row) {
  Table* table = GetTable(table_name);
  if (table == nullptr) return util::NotFound("no table " + table_name);
  GOOFI_RETURN_IF_ERROR(table->schema().CheckRow(row));
  GOOFI_RETURN_IF_ERROR(CheckForeignKeysOnInsert(*table, row));
  return table->Insert(std::move(row));
}

util::Status Database::InsertBatch(const std::string& table_name,
                                   std::vector<Row> rows) {
  Table* table = GetTable(table_name);
  if (table == nullptr) return util::NotFound("no table " + table_name);
  const Schema& schema = table->schema();

  // Resolve every foreign key's local/referenced column indices once.
  struct ResolvedFk {
    const Table* ref_table = nullptr;
    std::vector<size_t> local_indices;
    std::vector<size_t> ref_indices;
    std::unordered_set<Row, KeyHash, KeyEq> verified;  ///< per-batch memo
  };
  std::vector<ResolvedFk> fks;
  fks.reserve(schema.foreign_keys().size());
  for (const ForeignKey& fk : schema.foreign_keys()) {
    ResolvedFk resolved;
    resolved.ref_table = GetTable(fk.ref_table);
    if (resolved.ref_table == nullptr) {
      return util::Internal("foreign key references dropped table " +
                            fk.ref_table);
    }
    for (const auto& col : fk.local_columns) {
      resolved.local_indices.push_back(*schema.ColumnIndex(col));
    }
    for (const auto& col : fk.ref_columns) {
      resolved.ref_indices.push_back(*resolved.ref_table->schema().ColumnIndex(col));
    }
    fks.push_back(std::move(resolved));
  }

  // Insert in order; a row may reference an earlier row of the same batch
  // because FK checks run against the table as it grows.
  table->Reserve(table->slots().size() + rows.size());
  std::vector<Row> inserted_keys;
  const bool has_pk = !schema.primary_key_indices().empty();
  if (has_pk) inserted_keys.reserve(rows.size());
  if (observer_ != nullptr) observer_->OnInsertBatchBegin(*table);
  util::Status error = util::Status::Ok();
  for (Row& row : rows) {
    error = schema.CheckRow(row);
    if (!error.ok()) break;
    for (ResolvedFk& fk : fks) {
      Row values;
      values.reserve(fk.local_indices.size());
      bool any_null = false;
      for (size_t idx : fk.local_indices) {
        if (row[idx].is_null()) any_null = true;
        values.push_back(row[idx]);
      }
      if (any_null) continue;  // SQL: NULL FK values are not checked
      if (fk.verified.contains(values)) continue;
      if (!fk.ref_table->ExistsWhere(fk.ref_indices, values)) {
        error = util::ConstraintViolation(
            "foreign key violation: " + schema.table_name() + " -> " +
            fk.ref_table->schema().table_name() + " (no matching referenced row)");
        break;
      }
      fk.verified.insert(std::move(values));
    }
    if (!error.ok()) break;
    if (has_pk) {
      Row key;
      key.reserve(schema.primary_key_indices().size());
      for (size_t idx : schema.primary_key_indices()) key.push_back(row[idx]);
      error = table->Insert(std::move(row));
      if (!error.ok()) break;
      inserted_keys.push_back(std::move(key));
    } else {
      error = table->Insert(std::move(row));
      if (!error.ok()) break;
    }
  }
  if (error.ok()) {
    if (observer_ != nullptr) observer_->OnInsertBatchEnd(*table, true);
    return error;
  }

  // All-or-nothing: undo this batch's inserts (possible only with a primary
  // key to identify them; all GOOFI tables declare one).
  if (has_pk && !inserted_keys.empty()) {
    const auto& pk_indices = schema.primary_key_indices();
    std::unordered_set<Row, KeyHash, KeyEq> doomed(inserted_keys.begin(),
                                                   inserted_keys.end());
    table->DeleteWhere([&](const Row& row) {
      Row key;
      key.reserve(pk_indices.size());
      for (size_t idx : pk_indices) key.push_back(row[idx]);
      return doomed.contains(key);
    });
  }
  if (observer_ != nullptr) observer_->OnInsertBatchEnd(*table, false);
  return error;
}

bool Database::IsReferenced(const std::string& table_name, const Table& table,
                            const Row& row) const {
  for (const auto& [key, other] : tables_) {
    for (const ForeignKey& fk : other->schema().foreign_keys()) {
      if (!util::EqualsIgnoreCase(fk.ref_table, table_name)) continue;
      Row referenced_values;
      referenced_values.reserve(fk.ref_columns.size());
      for (const auto& col : fk.ref_columns) {
        referenced_values.push_back(row[*table.schema().ColumnIndex(col)]);
      }
      std::vector<size_t> local_indices;
      local_indices.reserve(fk.local_columns.size());
      for (const auto& col : fk.local_columns) {
        local_indices.push_back(*other->schema().ColumnIndex(col));
      }
      if (other->ExistsWhere(local_indices, referenced_values)) return true;
    }
  }
  return false;
}

util::Status Database::Delete(const std::string& table_name,
                              const std::function<bool(const Row&)>& predicate,
                              size_t* deleted) {
  Table* table = GetTable(table_name);
  if (table == nullptr) return util::NotFound("no table " + table_name);
  // First pass: verify none of the doomed rows are referenced (RESTRICT).
  util::Status st = util::Status::Ok();
  table->ForEach([&](const Row& row) {
    if (!st.ok() || !predicate(row)) return;
    if (IsReferenced(table_name, *table, row)) {
      st = util::ConstraintViolation("delete from " + table_name +
                                     " blocked: row is referenced");
    }
  });
  GOOFI_RETURN_IF_ERROR(st);
  const size_t n = table->DeleteWhere(predicate);
  if (deleted != nullptr) *deleted = n;
  return util::Status::Ok();
}

// ---------------------------------------------------------------------------
// Persistence. Save/Load speak the binary columnar snapshot format
// (db/archive); SaveLegacyText keeps the original line-oriented text format
// as a writer, and Load sniffs the first byte so both formats keep loading.
// ---------------------------------------------------------------------------

util::Status Database::Save(const std::string& path) const {
  return WriteSnapshotFile(*this, path, /*epoch=*/0);
}

util::Status Database::SaveLegacyText(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return util::IoError("cannot open " + path + " for writing");
  // Stream through one reusable buffer, CRC'ing incrementally, instead of
  // materializing the whole archive as a single string.
  util::Crc32 crc;
  std::string buf;
  const auto emit = [&] {
    crc.Update(buf);
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    buf.clear();
  };
  // Fields are appended one at a time: chained `"lit" + EscapeField(...)`
  // builds a temporary per join and trips GCC 12's -Wrestrict false positive
  // (PR105329) on the rvalue operator+; plain += does neither.
  buf += "GOOFIDB 1\n";
  for (const auto& [key, table] : tables_) {
    const Schema& schema = table->schema();
    buf += "TABLE ";
    buf += util::EscapeField(schema.table_name());
    buf += " ";
    buf += std::to_string(schema.num_columns());
    buf += "\n";
    for (const Column& col : schema.columns()) {
      buf += "COL ";
      buf += util::EscapeField(col.name);
      buf += "\t";
      buf += ValueTypeName(col.type);
      buf += "\t";
      buf += col.not_null ? "1" : "0";
      buf += "\n";
    }
    if (!schema.primary_key().empty()) {
      buf += "PK";
      for (const auto& col : schema.primary_key()) {
        buf += "\t";
        buf += util::EscapeField(col);
      }
      buf += "\n";
    }
    for (const ForeignKey& fk : schema.foreign_keys()) {
      buf += "FK\t";
      buf += util::EscapeField(fk.ref_table);
      buf += "\t";
      buf += std::to_string(fk.local_columns.size());
      for (const auto& col : fk.local_columns) {
        buf += "\t";
        buf += util::EscapeField(col);
      }
      for (const auto& col : fk.ref_columns) {
        buf += "\t";
        buf += util::EscapeField(col);
      }
      buf += "\n";
    }
    buf += "ROWS ";
    buf += std::to_string(table->size());
    buf += "\n";
    emit();
    table->ForEach([&](const Row& row) {
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) buf += "\t";
        buf += util::EscapeField(row[i].Serialize());
      }
      buf += "\n";
      if (buf.size() >= 64 * 1024) emit();
    });
    buf += "END\n";
    emit();
  }
  buf += "CRC ";
  buf += util::Format("%08x", crc.Value());
  buf += "\n";
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  out.flush();
  if (!out) return util::IoError("write failed for " + path);
  return util::Status::Ok();
}

util::Status Database::Load(const std::string& path, uint64_t* epoch_out,
                            bool* legacy_out) {
  auto loaded = ReadSnapshotFile(path);
  if (!loaded.ok()) return loaded.status();
  if (epoch_out != nullptr) *epoch_out = loaded.value().epoch;
  if (legacy_out != nullptr) *legacy_out = loaded.value().legacy_text;
  // Monotonic against this database's own history so every plan cached
  // before the load invalidates (the fresh database's internal counter is
  // unrelated and could alias an already-seen version).
  const uint64_t version = schema_version_;
  *this = std::move(loaded.value().db);
  schema_version_ = version + 1;
  return util::Status::Ok();
}

}  // namespace goofi::db
