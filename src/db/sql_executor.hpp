// Executes parsed SQL statements against a Database.
//
// This is the layer the paper's analysis phase uses: "The user must write
// tailor made scripts or programs that query the database for the required
// information" (§3.4). Examples and the analysis module issue SELECTs with
// WHERE/GROUP BY/aggregates through this executor.
//
// SELECT execution is plan-driven (see query_plan.hpp): sargable WHERE/ON
// conjuncts route through table indexes, and the full predicate is then
// re-evaluated on the candidates, so results are byte-identical to a full
// scan. `ExecOptions::use_indexes = false` forces the scan path — the
// differential test suite runs every query both ways.
#pragma once

#include <string>
#include <vector>

#include "db/database.hpp"
#include "db/query_plan.hpp"
#include "db/sql_ast.hpp"

namespace goofi::db {

/// Result set of a statement. Non-SELECT statements return an empty rowset
/// and report the number of affected rows.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  size_t affected = 0;

  /// Column index by (case-insensitive) name, or nullopt.
  std::optional<size_t> ColumnIndex(std::string_view name) const;

  /// ASCII table rendering, for examples and debugging.
  std::string ToString() const;
};

struct ExecOptions {
  /// When false, every SELECT runs as a full nested-loop scan even if an
  /// index applies (reference semantics for differential testing).
  bool use_indexes = true;
  /// Values bound to `?` placeholders, in order. Evaluating a placeholder
  /// without a bound value is an error.
  const std::vector<Value>* params = nullptr;
};

/// Parses and executes one SQL statement.
util::Result<QueryResult> ExecuteSql(Database& database, const std::string& sql);
util::Result<QueryResult> ExecuteSql(Database& database, const std::string& sql,
                                     const ExecOptions& options);

/// Executes an already-parsed statement. `select_plan` optionally supplies a
/// cached plan for a SelectStmt (the prepared-statement layer); it must have
/// been built for this database at its current schema_version. When null,
/// SELECTs are planned on the fly.
util::Result<QueryResult> ExecuteStatement(Database& database,
                                           const Statement& statement);
util::Result<QueryResult> ExecuteStatement(Database& database,
                                           const Statement& statement,
                                           const ExecOptions& options,
                                           const SelectPlan* select_plan = nullptr);

/// Parses `sql` and returns the chosen plan as text (shell `explain`).
util::Result<std::string> ExplainSql(Database& database, const std::string& sql);

}  // namespace goofi::db
