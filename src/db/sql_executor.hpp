// Executes parsed SQL statements against a Database.
//
// This is the layer the paper's analysis phase uses: "The user must write
// tailor made scripts or programs that query the database for the required
// information" (§3.4). Examples and the analysis module issue SELECTs with
// WHERE/GROUP BY/aggregates through this executor.
#pragma once

#include <string>
#include <vector>

#include "db/database.hpp"
#include "db/sql_ast.hpp"

namespace goofi::db {

/// Result set of a statement. Non-SELECT statements return an empty rowset
/// and report the number of affected rows.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  size_t affected = 0;

  /// Column index by (case-insensitive) name, or nullopt.
  std::optional<size_t> ColumnIndex(std::string_view name) const;

  /// ASCII table rendering, for examples and debugging.
  std::string ToString() const;
};

/// Parses and executes one SQL statement.
util::Result<QueryResult> ExecuteSql(Database& database, const std::string& sql);

/// Executes an already-parsed statement.
util::Result<QueryResult> ExecuteStatement(Database& database,
                                           const Statement& statement);

}  // namespace goofi::db
