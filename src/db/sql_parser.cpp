#include "db/sql_parser.hpp"

#include <type_traits>

#include "db/sql_tokenizer.hpp"
#include "util/strings.hpp"

namespace goofi::db {

namespace {

const char* const kAggregates[] = {"COUNT", "SUM", "AVG", "MIN", "MAX"};
const char* const kScalarFuncs[] = {"ABS", "LENGTH"};

bool IsAggregateName(std::string_view name) {
  for (const char* agg : kAggregates) {
    if (util::EqualsIgnoreCase(name, agg)) return true;
  }
  return false;
}

bool IsFunctionName(std::string_view name) {
  if (IsAggregateName(name)) return true;
  for (const char* fn : kScalarFuncs) {
    if (util::EqualsIgnoreCase(name, fn)) return true;
  }
  return false;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  util::Result<Statement> ParseStatement() {
    util::Result<Statement> result = ParseStatementImpl();
    if (!result.ok()) return result;
    if (Peek().IsSymbol(";")) Advance();
    if (Peek().type != TokenType::kEnd) {
      return Error("trailing input after statement");
    }
    return result;
  }

 private:
  util::Result<Statement> ParseStatementImpl() {
    const Token& tok = Peek();
    if (tok.IsKeyword("SELECT")) return WrapStmt(ParseSelect());
    if (tok.IsKeyword("INSERT")) return WrapStmt(ParseInsert());
    if (tok.IsKeyword("UPDATE")) return WrapStmt(ParseUpdate());
    if (tok.IsKeyword("DELETE")) return WrapStmt(ParseDelete());
    if (tok.IsKeyword("CREATE")) {
      if (PeekAhead(1).IsKeyword("INDEX")) return WrapStmt(ParseCreateIndex());
      return WrapStmt(ParseCreateTable());
    }
    if (tok.IsKeyword("DROP")) {
      if (PeekAhead(1).IsKeyword("INDEX")) return WrapStmt(ParseDropIndex());
      return WrapStmt(ParseDropTable());
    }
    return Error("expected a statement keyword");
  }

  template <typename T>
  util::Result<Statement> WrapStmt(util::Result<T> inner) {
    if (!inner.ok()) return inner.status();
    return Statement(std::move(inner).value());
  }

  // --- SELECT ---------------------------------------------------------

  util::Result<SelectStmt> ParseSelect() {
    Advance();  // SELECT
    SelectStmt stmt;
    for (;;) {
      SelectItem item;
      if (Peek().IsSymbol("*")) {
        Advance();
        item.star = true;
      } else {
        auto expr = ParseExpr();
        if (!expr.ok()) return expr.status();
        item.expr = std::move(expr).value();
        if (Peek().IsKeyword("AS")) {
          Advance();
          GOOFI_RETURN_IF_ERROR(ExpectIdent(&item.alias));
        } else if (Peek().type == TokenType::kIdent && !IsClauseKeyword(Peek())) {
          item.alias = Peek().text;
          Advance();
        }
      }
      stmt.items.push_back(std::move(item));
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }

    if (!Peek().IsKeyword("FROM")) return Error("expected FROM");
    Advance();
    GOOFI_RETURN_IF_ERROR(ExpectIdent(&stmt.from_table));
    if (Peek().type == TokenType::kIdent && !IsClauseKeyword(Peek())) {
      stmt.from_alias = Peek().text;
      Advance();
    }

    while (Peek().IsKeyword("JOIN") || Peek().IsKeyword("INNER")) {
      if (Peek().IsKeyword("INNER")) {
        Advance();
        if (!Peek().IsKeyword("JOIN")) return Error("expected JOIN after INNER");
      }
      Advance();  // JOIN
      JoinClause join;
      GOOFI_RETURN_IF_ERROR(ExpectIdent(&join.table));
      if (Peek().type == TokenType::kIdent && !Peek().IsKeyword("ON")) {
        join.alias = Peek().text;
        Advance();
      }
      if (!Peek().IsKeyword("ON")) return Error("expected ON in JOIN");
      Advance();
      auto on = ParseExpr();
      if (!on.ok()) return on.status();
      join.on = std::move(on).value();
      stmt.joins.push_back(std::move(join));
    }

    if (Peek().IsKeyword("WHERE")) {
      Advance();
      auto where = ParseExpr();
      if (!where.ok()) return where.status();
      stmt.where = std::move(where).value();
    }
    if (Peek().IsKeyword("GROUP")) {
      Advance();
      if (!Peek().IsKeyword("BY")) return Error("expected BY after GROUP");
      Advance();
      for (;;) {
        auto expr = ParseExpr();
        if (!expr.ok()) return expr.status();
        stmt.group_by.push_back(std::move(expr).value());
        if (!Peek().IsSymbol(",")) break;
        Advance();
      }
    }
    if (Peek().IsKeyword("ORDER")) {
      Advance();
      if (!Peek().IsKeyword("BY")) return Error("expected BY after ORDER");
      Advance();
      for (;;) {
        OrderItem item;
        auto expr = ParseExpr();
        if (!expr.ok()) return expr.status();
        item.expr = std::move(expr).value();
        if (Peek().IsKeyword("ASC")) {
          Advance();
        } else if (Peek().IsKeyword("DESC")) {
          Advance();
          item.descending = true;
        }
        stmt.order_by.push_back(std::move(item));
        if (!Peek().IsSymbol(",")) break;
        Advance();
      }
    }
    if (Peek().IsKeyword("LIMIT")) {
      Advance();
      if (Peek().type != TokenType::kInt) return Error("expected integer after LIMIT");
      stmt.limit = Peek().int_value;
      Advance();
    }
    return stmt;
  }

  static bool IsClauseKeyword(const Token& tok) {
    static const char* const kClauses[] = {"FROM",  "WHERE", "GROUP", "ORDER",
                                           "LIMIT", "JOIN",  "INNER", "ON",
                                           "AS",    "ASC",   "DESC",  "SET"};
    for (const char* kw : kClauses) {
      if (tok.IsKeyword(kw)) return true;
    }
    return false;
  }

  // --- INSERT ---------------------------------------------------------

  util::Result<InsertStmt> ParseInsert() {
    Advance();  // INSERT
    if (!Peek().IsKeyword("INTO")) return Error("expected INTO");
    Advance();
    InsertStmt stmt;
    GOOFI_RETURN_IF_ERROR(ExpectIdent(&stmt.table));
    if (Peek().IsSymbol("(")) {
      Advance();
      for (;;) {
        std::string col;
        GOOFI_RETURN_IF_ERROR(ExpectIdent(&col));
        stmt.columns.push_back(std::move(col));
        if (Peek().IsSymbol(")")) break;
        if (!Peek().IsSymbol(",")) return Error("expected , or ) in column list");
        Advance();
      }
      Advance();  // )
    }
    if (!Peek().IsKeyword("VALUES")) return Error("expected VALUES");
    Advance();
    for (;;) {
      if (!Peek().IsSymbol("(")) return Error("expected ( in VALUES");
      Advance();
      std::vector<ExprPtr> row;
      for (;;) {
        auto expr = ParseExpr();
        if (!expr.ok()) return expr.status();
        row.push_back(std::move(expr).value());
        if (Peek().IsSymbol(")")) break;
        if (!Peek().IsSymbol(",")) return Error("expected , or ) in VALUES row");
        Advance();
      }
      Advance();  // )
      stmt.rows.push_back(std::move(row));
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }
    return stmt;
  }

  // --- UPDATE / DELETE -------------------------------------------------

  util::Result<UpdateStmt> ParseUpdate() {
    Advance();  // UPDATE
    UpdateStmt stmt;
    GOOFI_RETURN_IF_ERROR(ExpectIdent(&stmt.table));
    if (!Peek().IsKeyword("SET")) return Error("expected SET");
    Advance();
    for (;;) {
      std::string col;
      GOOFI_RETURN_IF_ERROR(ExpectIdent(&col));
      if (!Peek().IsSymbol("=")) return Error("expected = in SET");
      Advance();
      auto expr = ParseExpr();
      if (!expr.ok()) return expr.status();
      stmt.assignments.emplace_back(std::move(col), std::move(expr).value());
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }
    if (Peek().IsKeyword("WHERE")) {
      Advance();
      auto where = ParseExpr();
      if (!where.ok()) return where.status();
      stmt.where = std::move(where).value();
    }
    return stmt;
  }

  util::Result<DeleteStmt> ParseDelete() {
    Advance();  // DELETE
    if (!Peek().IsKeyword("FROM")) return Error("expected FROM");
    Advance();
    DeleteStmt stmt;
    GOOFI_RETURN_IF_ERROR(ExpectIdent(&stmt.table));
    if (Peek().IsKeyword("WHERE")) {
      Advance();
      auto where = ParseExpr();
      if (!where.ok()) return where.status();
      stmt.where = std::move(where).value();
    }
    return stmt;
  }

  // --- CREATE / DROP TABLE ----------------------------------------------

  util::Result<CreateTableStmt> ParseCreateTable() {
    Advance();  // CREATE
    if (!Peek().IsKeyword("TABLE")) return Error("expected TABLE");
    Advance();
    std::string name;
    GOOFI_RETURN_IF_ERROR(ExpectIdent(&name));
    if (!Peek().IsSymbol("(")) return Error("expected ( in CREATE TABLE");
    Advance();

    std::vector<Column> columns;
    std::vector<std::string> primary_key;
    std::vector<ForeignKey> fks;
    for (;;) {
      if (Peek().IsKeyword("PRIMARY")) {
        Advance();
        if (!Peek().IsKeyword("KEY")) return Error("expected KEY");
        Advance();
        auto cols = ParseParenIdentList();
        if (!cols.ok()) return cols.status();
        primary_key = std::move(cols).value();
      } else if (Peek().IsKeyword("FOREIGN")) {
        Advance();
        if (!Peek().IsKeyword("KEY")) return Error("expected KEY");
        Advance();
        ForeignKey fk;
        auto local = ParseParenIdentList();
        if (!local.ok()) return local.status();
        fk.local_columns = std::move(local).value();
        if (!Peek().IsKeyword("REFERENCES")) return Error("expected REFERENCES");
        Advance();
        GOOFI_RETURN_IF_ERROR(ExpectIdent(&fk.ref_table));
        auto refs = ParseParenIdentList();
        if (!refs.ok()) return refs.status();
        fk.ref_columns = std::move(refs).value();
        fks.push_back(std::move(fk));
      } else {
        Column col;
        GOOFI_RETURN_IF_ERROR(ExpectIdent(&col.name));
        const Token& type_tok = Peek();
        if (type_tok.IsKeyword("INTEGER") || type_tok.IsKeyword("INT")) {
          col.type = ValueType::kInt;
        } else if (type_tok.IsKeyword("REAL") || type_tok.IsKeyword("DOUBLE")) {
          col.type = ValueType::kReal;
        } else if (type_tok.IsKeyword("TEXT") || type_tok.IsKeyword("VARCHAR")) {
          col.type = ValueType::kText;
        } else {
          return Error("expected a column type");
        }
        Advance();
        for (;;) {
          if (Peek().IsKeyword("NOT")) {
            Advance();
            if (!Peek().IsKeyword("NULL")) return Error("expected NULL after NOT");
            Advance();
            col.not_null = true;
          } else if (Peek().IsKeyword("PRIMARY")) {
            Advance();
            if (!Peek().IsKeyword("KEY")) return Error("expected KEY");
            Advance();
            primary_key.push_back(col.name);
          } else {
            break;
          }
        }
        columns.push_back(std::move(col));
      }
      if (Peek().IsSymbol(")")) break;
      if (!Peek().IsSymbol(",")) return Error("expected , or ) in CREATE TABLE");
      Advance();
    }
    Advance();  // )
    CreateTableStmt stmt;
    stmt.schema = Schema(std::move(name), std::move(columns),
                         std::move(primary_key), std::move(fks));
    return stmt;
  }

  util::Result<DropTableStmt> ParseDropTable() {
    Advance();  // DROP
    if (!Peek().IsKeyword("TABLE")) return Error("expected TABLE");
    Advance();
    DropTableStmt stmt;
    GOOFI_RETURN_IF_ERROR(ExpectIdent(&stmt.table));
    return stmt;
  }

  // --- CREATE / DROP INDEX ----------------------------------------------

  util::Result<CreateIndexStmt> ParseCreateIndex() {
    Advance();  // CREATE
    Advance();  // INDEX
    CreateIndexStmt stmt;
    GOOFI_RETURN_IF_ERROR(ExpectIdent(&stmt.index_name));
    if (!Peek().IsKeyword("ON")) return Error("expected ON in CREATE INDEX");
    Advance();
    GOOFI_RETURN_IF_ERROR(ExpectIdent(&stmt.table));
    auto cols = ParseParenIdentList();
    if (!cols.ok()) return cols.status();
    stmt.columns = std::move(cols).value();
    return stmt;
  }

  util::Result<DropIndexStmt> ParseDropIndex() {
    Advance();  // DROP
    Advance();  // INDEX
    DropIndexStmt stmt;
    GOOFI_RETURN_IF_ERROR(ExpectIdent(&stmt.index_name));
    if (!Peek().IsKeyword("ON")) return Error("expected ON in DROP INDEX");
    Advance();
    GOOFI_RETURN_IF_ERROR(ExpectIdent(&stmt.table));
    return stmt;
  }

  util::Result<std::vector<std::string>> ParseParenIdentList() {
    if (!Peek().IsSymbol("(")) return Error("expected (");
    Advance();
    std::vector<std::string> out;
    for (;;) {
      std::string ident;
      GOOFI_RETURN_IF_ERROR(ExpectIdent(&ident));
      out.push_back(std::move(ident));
      if (Peek().IsSymbol(")")) break;
      if (!Peek().IsSymbol(",")) return Error("expected , or )");
      Advance();
    }
    Advance();  // )
    return out;
  }

  // --- expressions ------------------------------------------------------
  // Precedence: OR < AND < NOT < comparison < additive < multiplicative <
  // unary minus < primary.

  util::Result<ExprPtr> ParseExpr() { return ParseOr(); }

  util::Result<ExprPtr> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    while (Peek().IsKeyword("OR")) {
      Advance();
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      lhs = Expr::Binary("OR", std::move(lhs).value(), std::move(rhs).value());
    }
    return lhs;
  }

  util::Result<ExprPtr> ParseAnd() {
    auto lhs = ParseNot();
    if (!lhs.ok()) return lhs;
    while (Peek().IsKeyword("AND")) {
      Advance();
      auto rhs = ParseNot();
      if (!rhs.ok()) return rhs;
      lhs = Expr::Binary("AND", std::move(lhs).value(), std::move(rhs).value());
    }
    return lhs;
  }

  util::Result<ExprPtr> ParseNot() {
    if (Peek().IsKeyword("NOT")) {
      Advance();
      auto arg = ParseNot();
      if (!arg.ok()) return arg;
      return ExprPtr(Expr::Unary("NOT", std::move(arg).value()));
    }
    return ParseComparison();
  }

  util::Result<ExprPtr> ParseComparison() {
    auto lhs = ParseAdditive();
    if (!lhs.ok()) return lhs;
    // IS NULL / IS NOT NULL
    if (Peek().IsKeyword("IS")) {
      Advance();
      bool negated = false;
      if (Peek().IsKeyword("NOT")) {
        Advance();
        negated = true;
      }
      if (!Peek().IsKeyword("NULL")) return Error("expected NULL after IS");
      Advance();
      ExprPtr cmp = Expr::Binary(negated ? "ISNOTNULL" : "ISNULL",
                                 std::move(lhs).value(), Expr::Literal(Value::Null()));
      return cmp;
    }
    static const char* const kCmps[] = {"=", "!=", "<=", ">=", "<", ">"};
    for (const char* op : kCmps) {
      if (Peek().IsSymbol(op)) {
        Advance();
        auto rhs = ParseAdditive();
        if (!rhs.ok()) return rhs;
        return ExprPtr(
            Expr::Binary(op, std::move(lhs).value(), std::move(rhs).value()));
      }
    }
    return lhs;
  }

  util::Result<ExprPtr> ParseAdditive() {
    auto lhs = ParseMultiplicative();
    if (!lhs.ok()) return lhs;
    for (;;) {
      const char* op = nullptr;
      if (Peek().IsSymbol("+")) {
        op = "+";
      } else if (Peek().IsSymbol("-")) {
        op = "-";
      } else {
        break;
      }
      Advance();
      auto rhs = ParseMultiplicative();
      if (!rhs.ok()) return rhs;
      lhs = Expr::Binary(op, std::move(lhs).value(), std::move(rhs).value());
    }
    return lhs;
  }

  util::Result<ExprPtr> ParseMultiplicative() {
    auto lhs = ParseUnary();
    if (!lhs.ok()) return lhs;
    for (;;) {
      const char* op = nullptr;
      if (Peek().IsSymbol("*")) {
        op = "*";
      } else if (Peek().IsSymbol("/")) {
        op = "/";
      } else if (Peek().IsSymbol("%")) {
        op = "%";
      } else {
        break;
      }
      Advance();
      auto rhs = ParseUnary();
      if (!rhs.ok()) return rhs;
      lhs = Expr::Binary(op, std::move(lhs).value(), std::move(rhs).value());
    }
    return lhs;
  }

  util::Result<ExprPtr> ParseUnary() {
    if (Peek().IsSymbol("-")) {
      Advance();
      auto arg = ParseUnary();
      if (!arg.ok()) return arg;
      return ExprPtr(Expr::Unary("NEG", std::move(arg).value()));
    }
    return ParsePrimary();
  }

  util::Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kInt: {
        Advance();
        return ExprPtr(Expr::Literal(Value::Int(tok.int_value)));
      }
      case TokenType::kReal: {
        Advance();
        return ExprPtr(Expr::Literal(Value::Real(tok.real_value)));
      }
      case TokenType::kString: {
        Advance();
        return ExprPtr(Expr::Literal(Value::Text(tok.text)));
      }
      case TokenType::kSymbol: {
        if (tok.IsSymbol("?")) {
          Advance();
          return ExprPtr(Expr::Param(next_param_++));
        }
        if (tok.IsSymbol("(")) {
          Advance();
          auto inner = ParseExpr();
          if (!inner.ok()) return inner;
          if (!Peek().IsSymbol(")")) return Error("expected )");
          Advance();
          return inner;
        }
        return Error("unexpected symbol '" + tok.text + "'");
      }
      case TokenType::kIdent: {
        if (tok.IsKeyword("NULL")) {
          Advance();
          return ExprPtr(Expr::Literal(Value::Null()));
        }
        const std::string first = tok.text;
        Advance();
        if (Peek().IsSymbol("(")) {  // function call
          if (!IsFunctionName(first)) {
            return Error("unknown function " + first);
          }
          Advance();
          auto e = std::make_unique<Expr>();
          e->kind = Expr::Kind::kCall;
          e->func = util::ToUpper(first);
          if (Peek().IsSymbol("*")) {
            Advance();
            e->star = true;
          } else if (!Peek().IsSymbol(")")) {
            for (;;) {
              auto arg = ParseExpr();
              if (!arg.ok()) return arg;
              e->args.push_back(std::move(arg).value());
              if (Peek().IsSymbol(")")) break;
              if (!Peek().IsSymbol(",")) return Error("expected , or ) in call");
              Advance();
            }
          }
          if (!Peek().IsSymbol(")")) return Error("expected ) after call args");
          Advance();
          return ExprPtr(std::move(e));
        }
        if (Peek().IsSymbol(".")) {  // qualified column
          Advance();
          std::string column;
          GOOFI_RETURN_IF_ERROR(ExpectIdent(&column));
          return ExprPtr(Expr::Column(first, std::move(column)));
        }
        return ExprPtr(Expr::Column("", first));
      }
      case TokenType::kEnd:
        return Error("unexpected end of input in expression");
    }
    return Error("unexpected token");
  }

  // --- plumbing -----------------------------------------------------------

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& PeekAhead(size_t n) const {
    const size_t i = pos_ + n;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (tokens_[pos_].type != TokenType::kEnd) ++pos_;
  }

  util::Status ExpectIdent(std::string* out) {
    if (Peek().type != TokenType::kIdent) {
      return util::ParseError("expected identifier at offset " +
                              std::to_string(Peek().offset));
    }
    *out = Peek().text;
    Advance();
    return util::Status::Ok();
  }

  util::Status Error(const std::string& message) const {
    return util::ParseError(message + " (at offset " +
                            std::to_string(Peek().offset) + ")");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  size_t next_param_ = 0;  ///< ordinal assigned to the next `?` placeholder
};

}  // namespace

bool Expr::ContainsAggregate() const {
  if (kind == Kind::kCall && IsAggregateName(func)) return true;
  for (const auto& arg : args) {
    if (arg->ContainsAggregate()) return true;
  }
  return false;
}

size_t Expr::CountParams() const {
  size_t count = kind == Kind::kParam ? 1 : 0;
  for (const auto& arg : args) count += arg->CountParams();
  return count;
}

size_t CountStatementParams(const Statement& statement) {
  auto count_opt = [](const ExprPtr& e) { return e ? e->CountParams() : 0; };
  return std::visit(
      [&](const auto& stmt) -> size_t {
        using T = std::decay_t<decltype(stmt)>;
        size_t n = 0;
        if constexpr (std::is_same_v<T, SelectStmt>) {
          for (const SelectItem& item : stmt.items) n += count_opt(item.expr);
          for (const JoinClause& join : stmt.joins) n += count_opt(join.on);
          n += count_opt(stmt.where);
          for (const ExprPtr& e : stmt.group_by) n += count_opt(e);
          for (const OrderItem& item : stmt.order_by) n += count_opt(item.expr);
        } else if constexpr (std::is_same_v<T, InsertStmt>) {
          for (const auto& row : stmt.rows) {
            for (const ExprPtr& e : row) n += count_opt(e);
          }
        } else if constexpr (std::is_same_v<T, UpdateStmt>) {
          for (const auto& [name, e] : stmt.assignments) n += count_opt(e);
          n += count_opt(stmt.where);
        } else if constexpr (std::is_same_v<T, DeleteStmt>) {
          n += count_opt(stmt.where);
        }
        return n;
      },
      statement);
}

util::Result<Statement> ParseSql(const std::string& sql) {
  auto tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParseStatement();
}

}  // namespace goofi::db
