// Campaign archive: binary columnar snapshots plus an append-only WAL.
//
// The snapshot is the O(archive)-cost part — a full image of every table,
// written atomically (temp file + rename). The WAL is the O(delta) part: a
// Database with an Archive attached has every mutation recorded as a logical
// record, group-committed by Commit(). Opening an existing archive loads the
// snapshot, replays the WAL (truncating a torn tail), and resumes appending —
// which is what makes long campaigns restartable across process kills.
//
// Snapshot file layout (see DESIGN.md "Archive format & recovery invariants"):
//
//   header: 0xB1 'G' 'D' 'B' <u8 version=1> <u64 epoch LE> <varint ntables>
//   per table (database iteration order = lowercase-name order):
//     <str name> <schema> <varint nindexes>
//     per index: <str name> <u8 kind> <varint ncols> <str column name>*
//     <varint nrows>
//     per column: <u32 segment_len LE> <u32 crc32(segment) LE> <segment>
//       segment: null bitmap (ceil(nrows/8) bytes, LSB-first, bit set =
//       non-NULL) then, for each non-NULL row in order, <u8 tag><packed value>
//   trailer: <u32 crc32 of everything before it LE>
//
// A first byte of 0xB1 discriminates from the legacy text format, whose files
// start with "GOOFIDB" (0x47); Database::Load sniffs it and keeps reading old
// archives. Snapshots store row values in live-row physical order and persist
// index definitions, so a loaded database is byte-identical (row order, index
// set) to the one that was saved.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "db/database.hpp"
#include "db/wal.hpp"
#include "util/status.hpp"

namespace goofi::db {

// --- snapshot I/O ------------------------------------------------------------

/// Writes a binary columnar snapshot of `db` to `path` via temp file +
/// atomic rename. `epoch` ties the snapshot to its WAL (see Archive).
util::Status WriteSnapshotFile(const Database& db, const std::string& path,
                               uint64_t epoch);

struct LoadedSnapshot {
  Database db;
  uint64_t epoch = 0;
  bool legacy_text = false;  ///< file was in the pre-archive text format
};

/// Reads a snapshot written by WriteSnapshotFile or by the legacy text
/// writer (Database::SaveLegacyText), sniffing the format from the first
/// byte. Legacy files load with epoch 0 and no index definitions.
util::Result<LoadedSnapshot> ReadSnapshotFile(const std::string& path);

// --- archive -----------------------------------------------------------------

struct ArchiveOptions {
  /// Flush the WAL after every logical operation. The parallel runner turns
  /// this off via GroupCommitScope so durability points align with its
  /// ordered result batches.
  bool auto_commit = true;
  /// Fold the WAL into a fresh snapshot from Commit() once it outgrows the
  /// snapshot (see fold_ratio/min_fold_bytes).
  bool auto_checkpoint = true;
  /// Checkpoint when wal_bytes > max(min_fold_bytes, fold_ratio * snapshot_bytes).
  double fold_ratio = 1.0;
  uint64_t min_fold_bytes = 64 * 1024;
};

/// Counters for `stats`/`archive status`; a consistent copy is returned by
/// Archive::stats() (safe to call from any thread).
struct ArchiveStats {
  uint64_t epoch = 0;
  uint64_t wal_records_appended = 0;
  uint64_t wal_commits = 0;        ///< group commits that reached the disk
  uint64_t wal_records_replayed = 0;
  uint64_t wal_bytes = 0;          ///< durable WAL size, header included
  uint64_t wal_bytes_truncated = 0;
  bool recovered_torn_tail = false;
  bool stale_wal_discarded = false;
  uint64_t snapshot_bytes = 0;
  uint64_t checkpoints_folded = 0;
  bool loaded_legacy_text = false;
};

/// Durable backing for one Database. While attached (as the database's
/// observer) it records every mutation into the WAL; Commit() makes the
/// records since the last commit durable as one group; Checkpoint() folds
/// them into a fresh snapshot and starts a new epoch.
///
/// Thread safety: mutations must come from one thread at a time (the
/// database itself is single-writer; the parallel runner's committer thread
/// satisfies this), but stats() may race with them and is locked.
class Archive final : public DatabaseObserver {
 public:
  /// Opens or creates the archive at `path` (WAL lives at `path` + ".wal").
  /// An existing archive replaces `db`'s contents with snapshot + replayed
  /// WAL; a fresh one writes an initial snapshot of `db` as-is. On success
  /// the archive is attached as `db`'s observer.
  static util::Result<std::unique_ptr<Archive>> Open(
      Database* db, const std::string& path, ArchiveOptions options = {});

  ~Archive() override;

  Archive(const Archive&) = delete;
  Archive& operator=(const Archive&) = delete;

  /// Group commit: makes every record since the last commit durable, then
  /// checkpoints if the WAL outgrew the fold threshold. Surfaces any sticky
  /// error from auto-committed appends.
  util::Status Commit();

  /// Folds the WAL into a fresh snapshot (temp + rename), then resets the
  /// WAL under the next epoch. A crash between the two steps leaves a
  /// new-epoch snapshot with an old-epoch WAL, which Open discards as stale
  /// (its records are already folded in).
  util::Status Checkpoint();

  /// Commits pending records and detaches from the database. Called by the
  /// destructor; call explicitly to observe the final Status.
  util::Status Close();

  void SetAutoCommit(bool on);

  const std::string& path() const { return path_; }
  ArchiveStats stats() const;

  // DatabaseObserver implementation (callbacks from the Database/Table
  // mutation paths; not for direct use).
  void OnInsert(const Table& table, const Row& row) override;
  void OnDelete(const Table& table, const std::vector<Row>& removed) override;
  void OnUpdate(const Table& table,
                const std::vector<std::pair<Row, Row>>& changes) override;
  void OnInsertBatchBegin(const Table& table) override;
  void OnInsertBatchEnd(const Table& table, bool committed) override;
  void OnCreateTable(const Schema& schema) override;
  void OnDropTable(const std::string& name) override;
  void OnCreateIndex(const Table& table, const std::string& name,
                     const std::vector<std::string>& columns,
                     IndexKind kind) override;
  void OnDropIndex(const Table& table, const std::string& name) override;

  /// RAII: turns auto-commit off so the WAL buffers across a whole batch,
  /// then commits and restores on destruction (the group commit).
  class GroupCommitScope {
   public:
    explicit GroupCommitScope(Archive* archive);
    ~GroupCommitScope();
    GroupCommitScope(const GroupCommitScope&) = delete;
    GroupCommitScope& operator=(const GroupCommitScope&) = delete;

   private:
    Archive* archive_;
    bool previous_;
  };

 private:
  Archive(Database* db, std::string path, ArchiveOptions options);

  /// Appends one record and, under auto-commit, flushes it. I/O failures
  /// latch into error_ (observer callbacks cannot return Status) and are
  /// surfaced by the next Commit()/Close().
  void AppendLocked(WalOp op, const std::string& body);
  util::Status CommitLocked();
  util::Status CheckpointLocked();

  Database* db_;
  const std::string path_;
  const ArchiveOptions options_;
  mutable std::mutex mutex_;
  Wal wal_;
  uint64_t epoch_ = 0;
  bool auto_commit_ = true;
  bool attached_ = false;
  util::Status error_;  ///< sticky first auto-commit failure

  // In-flight InsertBatch: per-row OnInsert callbacks fold into one
  // kInsertBatch record, emitted (or dropped, on rollback) at batch end.
  bool in_batch_ = false;
  std::string batch_rows_;
  uint64_t batch_count_ = 0;

  ArchiveStats stats_;
};

}  // namespace goofi::db
