// A fixed-size worker pool for campaign parallelism.
//
// The pool is deliberately small: a queue of type-erased tasks, N worker
// threads, and future-based result/exception propagation. It carries no
// GOOFI-specific policy — sharding, ordering and determinism live in
// core::ParallelCampaignRunner, which owns one pool per run.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace goofi::util {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains and joins (see Shutdown).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Enqueues `task`; the returned future yields its result or rethrows the
  /// exception it escaped with. Submitting after Shutdown() throws.
  template <typename F>
  auto Submit(F&& task) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> future = packaged->get_future();
    Enqueue([packaged]() { (*packaged)(); });
    return future;
  }

  /// Stops accepting tasks, runs everything already queued, joins all
  /// workers. Idempotent; also called by the destructor.
  void Shutdown();

  /// A sensible default worker count for this machine.
  static int DefaultWorkers();

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace goofi::util
