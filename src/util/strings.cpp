#include "util/strings.hpp"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace goofi::util {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    const size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::optional<int64_t> ParseInt(std::string_view text) {
  text = Trim(text);
  if (text.empty()) return std::nullopt;
  const std::string buf(text);
  errno = 0;
  char* end = nullptr;
  bool negative = false;
  const char* start = buf.c_str();
  if (*start == '-') {
    negative = true;
    ++start;
  } else if (*start == '+') {
    ++start;
  }
  int base = 10;
  if (start[0] == '0' && (start[1] == 'x' || start[1] == 'X')) base = 16;
  const unsigned long long raw = std::strtoull(start, &end, base);
  if (errno != 0 || end == start || *end != '\0') return std::nullopt;
  const int64_t value = static_cast<int64_t>(raw);
  return negative ? -value : value;
}

std::optional<double> ParseDouble(std::string_view text) {
  text = Trim(text);
  if (text.empty()) return std::nullopt;
  const std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end == buf.c_str() || *end != '\0') return std::nullopt;
  return value;
}

std::string EscapeField(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeField(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\\' && i + 1 < text.size()) {
      ++i;
      switch (text[i]) {
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        default:
          out.push_back(text[i]);
      }
    } else {
      out.push_back(text[i]);
    }
  }
  return out;
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace goofi::util
