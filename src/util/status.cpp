#include "util/status.hpp"

namespace goofi::util {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kConstraintViolation:
      return "constraint_violation";
    case StatusCode::kParseError:
      return "parse_error";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kTargetFault:
      return "target_fault";
    case StatusCode::kTimeout:
      return "timeout";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace goofi::util
