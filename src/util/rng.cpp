#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <unordered_set>

namespace goofi::util {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::Seed(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : state_) s = sm.Next();
  have_spare_gaussian_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling: discard the final partial bucket.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  if (span == UINT64_MAX) return static_cast<int64_t>(Next());
  return lo + static_cast<int64_t>(NextBelow(span + 1));
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian(double mean, double stddev) {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return mean + stddev * spare_gaussian_;
  }
  // Box-Muller transform.
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  have_spare_gaussian_ = true;
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  assert(k <= n);
  std::vector<uint64_t> out;
  out.reserve(k);
  // Floyd's algorithm: O(k) expected time, no O(n) scratch.
  std::unordered_set<uint64_t> seen;
  for (uint64_t j = n - k; j < n; ++j) {
    const uint64_t t = NextBelow(j + 1);
    if (seen.insert(t).second) {
      out.push_back(t);
    } else {
      seen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace goofi::util
