// Minimal leveled logger. The campaign progress monitor (paper Fig. 7) and
// examples route human-facing output through this; tests silence it.
#pragma once

#include <functional>
#include <string>

namespace goofi::util {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

/// Process-global log configuration. Thread-safe: parallel campaign workers
/// (core::ParallelCampaignRunner) log concurrently, so the level is atomic
/// and the sink is invoked under a mutex (messages never interleave
/// mid-line). SetSink should still happen before workers start — replacing
/// the sink mid-campaign serializes correctly but delivers an arbitrary
/// prefix of messages to the old sink.
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static void SetLevel(LogLevel level);
  static LogLevel Level();

  /// Replaces the default stderr sink (pass nullptr to restore it).
  static void SetSink(Sink sink);

  static void Write(LogLevel level, const std::string& message);

  static void Debug(const std::string& m) { Write(LogLevel::kDebug, m); }
  static void Info(const std::string& m) { Write(LogLevel::kInfo, m); }
  static void Warn(const std::string& m) { Write(LogLevel::kWarn, m); }
  static void Error(const std::string& m) { Write(LogLevel::kError, m); }
};

}  // namespace goofi::util
