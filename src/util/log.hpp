// Minimal leveled logger. The campaign progress monitor (paper Fig. 7) and
// examples route human-facing output through this; tests silence it.
#pragma once

#include <functional>
#include <string>

namespace goofi::util {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

/// Process-global log configuration. Not thread-safe by design: GOOFI
/// campaigns are single-threaded host loops (as in the paper).
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static void SetLevel(LogLevel level);
  static LogLevel Level();

  /// Replaces the default stderr sink (pass nullptr to restore it).
  static void SetSink(Sink sink);

  static void Write(LogLevel level, const std::string& message);

  static void Debug(const std::string& m) { Write(LogLevel::kDebug, m); }
  static void Info(const std::string& m) { Write(LogLevel::kInfo, m); }
  static void Warn(const std::string& m) { Write(LogLevel::kWarn, m); }
  static void Error(const std::string& m) { Write(LogLevel::kError, m); }
};

}  // namespace goofi::util
