// Lightweight status / result types used across the GOOFI library.
//
// Most fallible operations return either `Status` (no payload) or
// `Result<T>` (payload or error). Exceptions are reserved for programming
// errors (precondition violations), matching the style of the rest of the
// code base.
#pragma once

#include <cassert>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace goofi::util {

/// Error categories used by Status. Kept deliberately coarse; the message
/// string carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kConstraintViolation,  ///< database integrity (PK/FK) violations
  kParseError,           ///< SQL / assembly / config parse failures
  kIoError,              ///< file persistence failures
  kTargetFault,          ///< target system refused or faulted on an operation
  kTimeout,              ///< workload or link deadline exceeded
  kInternal,
};

/// Human-readable name of a status code ("ok", "parse_error", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error value without a payload.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk);
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status ConstraintViolation(std::string msg) {
  return Status(StatusCode::kConstraintViolation, std::move(msg));
}
inline Status ParseError(std::string msg) {
  return Status(StatusCode::kParseError, std::move(msg));
}
inline Status IoError(std::string msg) {
  return Status(StatusCode::kIoError, std::move(msg));
}
inline Status TargetFault(std::string msg) {
  return Status(StatusCode::kTargetFault, std::move(msg));
}
inline Status Timeout(std::string msg) {
  return Status(StatusCode::kTimeout, std::move(msg));
}
inline Status Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

/// A value of type T or an error Status. Similar in spirit to
/// std::expected<T, Status> (C++23), restricted to what this code base needs.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or throws std::runtime_error; for tests and examples
  /// where an error is unrecoverable.
  T& ValueOrDie() & {
    if (!ok()) throw std::runtime_error("Result error: " + status_.ToString());
    return *value_;
  }
  // Returns by value on rvalues: range-for over `Fn().ValueOrDie()` must not
  // dangle (the Result temporary dies at the end of the full expression).
  T ValueOrDie() && {
    if (!ok()) throw std::runtime_error("Result error: " + status_.ToString());
    return std::move(*value_);
  }

  const T& value_or(const T& fallback) const {
    return ok() ? *value_ : fallback;
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value
};

/// Propagates an error Status from an expression returning Status.
#define GOOFI_RETURN_IF_ERROR(expr)                       \
  do {                                                    \
    ::goofi::util::Status goofi_status_tmp_ = (expr);     \
    if (!goofi_status_tmp_.ok()) return goofi_status_tmp_; \
  } while (false)

}  // namespace goofi::util
