// Dynamic bit vector used to model scan chains and logged state vectors.
//
// Scan chains (IEEE 1149.1) are streams of bits shifted through the target's
// test logic; `BitVec` is the host-side image of such a stream. The
// LoggedSystemState.stateVector database column stores the serialized form.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace goofi::util {

class BitVec {
 public:
  BitVec() = default;
  /// All-zero vector of `size` bits.
  explicit BitVec(size_t size) : size_(size), words_((size + 63) / 64, 0) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Precondition for all indexed accessors: i < size().
  bool Get(size_t i) const;
  void Set(size_t i, bool value);
  void Flip(size_t i);

  /// Appends one bit at the end (grows the vector).
  void PushBack(bool value);

  /// Pre-allocates word storage for `bits` bits. Hot shift paths append one
  /// bit per TCK; without this the backing vector reallocates every 64 bits.
  void Reserve(size_t bits) { words_.reserve((bits + 63) / 64); }

  /// Resets to an all-zero vector of `bits` bits, reusing existing capacity
  /// (unlike `*this = BitVec(bits)`, which reallocates). For capture buffers
  /// recycled across scan-chain reads.
  void ResizeZero(size_t bits) {
    size_ = bits;
    words_.assign((bits + 63) / 64, 0);
  }

  /// Appends the low `bits` bits of `value`, LSB first. bits <= 64.
  void AppendWord(uint64_t value, size_t bits);

  /// Reads `bits` bits starting at `offset`, LSB first, as an integer.
  /// Precondition: offset + bits <= size(), bits <= 64.
  uint64_t ExtractWord(size_t offset, size_t bits) const;

  /// Overwrites `bits` bits starting at `offset` with the low bits of value.
  void DepositWord(size_t offset, uint64_t value, size_t bits);

  /// Number of set bits.
  size_t PopCount() const;

  /// Indices where this and other differ. Precondition: same size.
  std::vector<size_t> DiffBits(const BitVec& other) const;

  /// XOR in place. Precondition: same size.
  void XorWith(const BitVec& other);

  void Clear() {
    size_ = 0;
    words_.clear();
  }

  bool operator==(const BitVec& other) const;
  bool operator!=(const BitVec& other) const { return !(*this == other); }

  /// "0"/"1" characters, index 0 first. Used for the stateVector DB column.
  std::string ToString() const;
  /// Parses the ToString format.
  static Result<BitVec> FromString(const std::string& text);

  /// Compact hex form (whole words), for logging.
  std::string ToHex() const;

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace goofi::util
