// Deterministic pseudo-random number generation for fault-injection
// campaigns. Every campaign stores its seed in the database so an experiment
// can be replayed bit-exactly (the paper's `parentExperiment` re-run relies
// on this determinism).
#pragma once

#include <cstdint>
#include <vector>

namespace goofi::util {

/// SplitMix64; used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality, reproducible across platforms
/// (unlike std::mt19937 whose distributions are implementation-defined).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x600F1u) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). Precondition: bound > 0. Uses rejection sampling
  /// to avoid modulo bias.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  /// Gaussian via Box-Muller (used by environment-simulator sensor noise).
  double NextGaussian(double mean = 0.0, double stddev = 1.0);

  /// k distinct values sampled uniformly from [0, n). Precondition: k <= n.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

  /// Complete generator state, exposed for convergence hashing: two Rngs
  /// with equal GetState() produce identical future draw sequences. Includes
  /// the Box-Muller spare so a pending half-pair is not invisible.
  struct State {
    uint64_t s[4];
    bool have_spare_gaussian;
    double spare_gaussian;
  };
  State GetState() const {
    return {{state_[0], state_[1], state_[2], state_[3]},
            have_spare_gaussian_, spare_gaussian_};
  }

 private:
  uint64_t state_[4];
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace goofi::util
