#include "util/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace goofi::util {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      throw std::runtime_error("ThreadPool::Submit after Shutdown");
    }
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this]() { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // A packaged_task captures any exception into its future; a raw task that
    // throws would terminate, same as an unhandled exception on any thread.
    task();
  }
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_ && threads_.empty()) return;
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
}

int ThreadPool::DefaultWorkers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<int>(hw);
}

}  // namespace goofi::util
