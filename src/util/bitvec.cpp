#include "util/bitvec.hpp"

#include <bit>
#include <cassert>

namespace goofi::util {

bool BitVec::Get(size_t i) const {
  assert(i < size_);
  return (words_[i / 64] >> (i % 64)) & 1u;
}

void BitVec::Set(size_t i, bool value) {
  assert(i < size_);
  const uint64_t mask = 1ULL << (i % 64);
  if (value) {
    words_[i / 64] |= mask;
  } else {
    words_[i / 64] &= ~mask;
  }
}

void BitVec::Flip(size_t i) {
  assert(i < size_);
  words_[i / 64] ^= 1ULL << (i % 64);
}

void BitVec::PushBack(bool value) {
  if (size_ % 64 == 0) words_.push_back(0);
  ++size_;
  Set(size_ - 1, value);
}

void BitVec::AppendWord(uint64_t value, size_t bits) {
  assert(bits <= 64);
  if (bits == 0) return;
  if (bits < 64) value &= (1ULL << bits) - 1;
  const size_t bit_off = size_ % 64;
  size_ += bits;
  words_.resize((size_ + 63) / 64, 0);
  words_[(size_ - bits) / 64] |= value << bit_off;
  if (bit_off != 0 && bit_off + bits > 64) {
    words_[(size_ - 1) / 64] |= value >> (64 - bit_off);
  }
}

uint64_t BitVec::ExtractWord(size_t offset, size_t bits) const {
  assert(bits <= 64);
  assert(offset + bits <= size_);
  uint64_t out = 0;
  for (size_t b = 0; b < bits; ++b) {
    if (Get(offset + b)) out |= 1ULL << b;
  }
  return out;
}

void BitVec::DepositWord(size_t offset, uint64_t value, size_t bits) {
  assert(bits <= 64);
  assert(offset + bits <= size_);
  for (size_t b = 0; b < bits; ++b) Set(offset + b, (value >> b) & 1u);
}

size_t BitVec::PopCount() const {
  size_t count = 0;
  for (uint64_t w : words_) count += static_cast<size_t>(std::popcount(w));
  return count;
}

std::vector<size_t> BitVec::DiffBits(const BitVec& other) const {
  assert(size_ == other.size_);
  std::vector<size_t> diffs;
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t x = words_[w] ^ other.words_[w];
    while (x != 0) {
      const int b = std::countr_zero(x);
      diffs.push_back(w * 64 + static_cast<size_t>(b));
      x &= x - 1;
    }
  }
  return diffs;
}

void BitVec::XorWith(const BitVec& other) {
  assert(size_ == other.size_);
  for (size_t w = 0; w < words_.size(); ++w) words_[w] ^= other.words_[w];
}

bool BitVec::operator==(const BitVec& other) const {
  if (size_ != other.size_) return false;
  // Trailing bits past size_ are always zero (Set/PushBack maintain this),
  // so whole-word comparison is exact.
  return words_ == other.words_;
}

std::string BitVec::ToString() const {
  // Word-at-a-time: start from all-'0' and flip only the set positions.
  // State vectors are mostly zeros, so this touches far fewer characters
  // than a per-bit Get() loop (this runs once per retired instruction in
  // detail-mode logging).
  std::string out(size_, '0');
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t bits = words_[w];
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      out[w * 64 + static_cast<size_t>(b)] = '1';
      bits &= bits - 1;
    }
  }
  return out;
}

Result<BitVec> BitVec::FromString(const std::string& text) {
  BitVec out(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '1') {
      out.Set(i, true);
    } else if (text[i] != '0') {
      return ParseError("BitVec::FromString: invalid character at index " +
                        std::to_string(i));
    }
  }
  return out;
}

std::string BitVec::ToHex() const {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(words_.size() * 16 + 2);
  out += "0x";
  for (size_t w = words_.size(); w-- > 0;) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      out.push_back(kDigits[(words_[w] >> shift) & 0xF]);
    }
  }
  return out;
}

}  // namespace goofi::util
