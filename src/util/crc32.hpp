// CRC-32 (IEEE 802.3 polynomial). Used to checksum persisted database files
// and as the control-flow signature primitive in the CPU's EDM.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace goofi::util {

/// Incremental CRC-32. Feed bytes, read Value() at any point.
class Crc32 {
 public:
  void Update(const void* data, size_t size);
  void Update(std::string_view text) { Update(text.data(), text.size()); }
  void UpdateWord(uint32_t word);

  /// Final (post-inverted) CRC of everything fed so far.
  uint32_t Value() const { return ~state_; }

  void Reset() { state_ = 0xFFFFFFFFu; }

  /// Raw accumulator access for checkpoint save/restore. `raw_state` is the
  /// pre-inverted internal state, not Value(); round-trips exactly.
  uint32_t raw_state() const { return state_; }
  void set_raw_state(uint32_t state) { state_ = state; }

 private:
  uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot convenience.
uint32_t Crc32Of(std::string_view text);

}  // namespace goofi::util
