#include "util/log.hpp"

#include <cstdio>

namespace goofi::util {

namespace {
LogLevel g_level = LogLevel::kWarn;
Log::Sink g_sink;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void Log::SetLevel(LogLevel level) { g_level = level; }
LogLevel Log::Level() { return g_level; }
void Log::SetSink(Sink sink) { g_sink = std::move(sink); }

void Log::Write(LogLevel level, const std::string& message) {
  if (level < g_level) return;
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  std::fprintf(stderr, "[goofi %s] %s\n", LevelName(level), message.c_str());
}

}  // namespace goofi::util
