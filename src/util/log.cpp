#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace goofi::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;  // guards g_sink and serializes sink invocations
Log::Sink g_sink;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void Log::SetLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel Log::Level() { return g_level.load(std::memory_order_relaxed); }

void Log::SetSink(Sink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

void Log::Write(LogLevel level, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  std::fprintf(stderr, "[goofi %s] %s\n", LevelName(level), message.c_str());
}

}  // namespace goofi::util
