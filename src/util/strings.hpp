// Small string utilities shared by the SQL parser, the assembler and the
// persistence layer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace goofi::util {

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits on runs of whitespace; empty fields are dropped.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Removes leading/trailing whitespace.
std::string_view Trim(std::string_view text);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII case-insensitive equality (SQL keywords, register names).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Lowercases ASCII.
std::string ToLower(std::string_view text);
/// Uppercases ASCII.
std::string ToUpper(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);

/// Parses decimal or 0x-prefixed hex, with optional leading '-'.
std::optional<int64_t> ParseInt(std::string_view text);
std::optional<double> ParseDouble(std::string_view text);

/// Escapes a field for the persistence format: backslash-escapes
/// '\\', '\n', '\t' and the field separator '\t' survivors.
std::string EscapeField(std::string_view text);
/// Inverse of EscapeField.
std::string UnescapeField(std::string_view text);

/// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace goofi::util
