#include "util/crc32.hpp"

#include <array>

namespace goofi::util {

namespace {
std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}
}  // namespace

void Crc32::Update(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const auto& table = Table();
  for (size_t i = 0; i < size; ++i) {
    state_ = table[(state_ ^ bytes[i]) & 0xFFu] ^ (state_ >> 8);
  }
}

void Crc32::UpdateWord(uint32_t word) {
  unsigned char bytes[4] = {
      static_cast<unsigned char>(word & 0xFF),
      static_cast<unsigned char>((word >> 8) & 0xFF),
      static_cast<unsigned char>((word >> 16) & 0xFF),
      static_cast<unsigned char>((word >> 24) & 0xFF),
  };
  Update(bytes, 4);
}

uint32_t Crc32Of(std::string_view text) {
  Crc32 crc;
  crc.Update(text);
  return crc.Value();
}

}  // namespace goofi::util
