#include "util/crc32.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace goofi::util {

namespace {

// Slice-by-8: eight derived tables let the hot loop fold 8 input bytes per
// iteration instead of 1. Same IEEE 802.3 polynomial, same resulting CRC as
// the classic byte-at-a-time loop — only the walk order differs.
using SliceTables = std::array<std::array<uint32_t, 256>, 8>;

SliceTables MakeTables() {
  SliceTables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables[0][i];
    for (size_t t = 1; t < 8; ++t) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[t][i] = c;
    }
  }
  return tables;
}

const SliceTables& Tables() {
  static const SliceTables tables = MakeTables();
  return tables;
}

}  // namespace

void Crc32::Update(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const auto& t = Tables();
  uint32_t state = state_;
  // The 8-byte fold reads the input as two little-endian words; on a
  // big-endian host fall back to the (table[0]-only) tail loop below.
  while (std::endian::native == std::endian::little && size >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, bytes, 4);
    std::memcpy(&hi, bytes + 4, 4);
    lo ^= state;
    state = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
            t[5][(lo >> 16) & 0xFFu] ^ t[4][(lo >> 24) & 0xFFu] ^
            t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
            t[1][(hi >> 16) & 0xFFu] ^ t[0][(hi >> 24) & 0xFFu];
    bytes += 8;
    size -= 8;
  }
  for (size_t i = 0; i < size; ++i) {
    state = t[0][(state ^ bytes[i]) & 0xFFu] ^ (state >> 8);
  }
  state_ = state;
}

void Crc32::UpdateWord(uint32_t word) {
  unsigned char bytes[4] = {
      static_cast<unsigned char>(word & 0xFF),
      static_cast<unsigned char>((word >> 8) & 0xFF),
      static_cast<unsigned char>((word >> 16) & 0xFF),
      static_cast<unsigned char>((word >> 24) & 0xFF),
  };
  Update(bytes, 4);
}

uint32_t Crc32Of(std::string_view text) {
  Crc32 crc;
  crc.Update(text);
  return crc.Value();
}

}  // namespace goofi::util
