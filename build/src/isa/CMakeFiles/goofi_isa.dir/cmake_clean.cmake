file(REMOVE_RECURSE
  "CMakeFiles/goofi_isa.dir/assembler.cpp.o"
  "CMakeFiles/goofi_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/goofi_isa.dir/isa.cpp.o"
  "CMakeFiles/goofi_isa.dir/isa.cpp.o.d"
  "libgoofi_isa.a"
  "libgoofi_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goofi_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
