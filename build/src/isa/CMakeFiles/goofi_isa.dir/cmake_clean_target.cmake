file(REMOVE_RECURSE
  "libgoofi_isa.a"
)
