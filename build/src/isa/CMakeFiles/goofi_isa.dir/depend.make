# Empty dependencies file for goofi_isa.
# This may be replaced when dependencies are built.
