file(REMOVE_RECURSE
  "libgoofi_core.a"
)
