
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/algorithms.cpp" "src/core/CMakeFiles/goofi_core.dir/algorithms.cpp.o" "gcc" "src/core/CMakeFiles/goofi_core.dir/algorithms.cpp.o.d"
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/goofi_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/goofi_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/campaign_store.cpp" "src/core/CMakeFiles/goofi_core.dir/campaign_store.cpp.o" "gcc" "src/core/CMakeFiles/goofi_core.dir/campaign_store.cpp.o.d"
  "/root/repo/src/core/preinjection.cpp" "src/core/CMakeFiles/goofi_core.dir/preinjection.cpp.o" "gcc" "src/core/CMakeFiles/goofi_core.dir/preinjection.cpp.o.d"
  "/root/repo/src/core/progress.cpp" "src/core/CMakeFiles/goofi_core.dir/progress.cpp.o" "gcc" "src/core/CMakeFiles/goofi_core.dir/progress.cpp.o.d"
  "/root/repo/src/core/propagation.cpp" "src/core/CMakeFiles/goofi_core.dir/propagation.cpp.o" "gcc" "src/core/CMakeFiles/goofi_core.dir/propagation.cpp.o.d"
  "/root/repo/src/core/swifi_target.cpp" "src/core/CMakeFiles/goofi_core.dir/swifi_target.cpp.o" "gcc" "src/core/CMakeFiles/goofi_core.dir/swifi_target.cpp.o.d"
  "/root/repo/src/core/thor_target.cpp" "src/core/CMakeFiles/goofi_core.dir/thor_target.cpp.o" "gcc" "src/core/CMakeFiles/goofi_core.dir/thor_target.cpp.o.d"
  "/root/repo/src/core/types.cpp" "src/core/CMakeFiles/goofi_core.dir/types.cpp.o" "gcc" "src/core/CMakeFiles/goofi_core.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/goofi_db.dir/DependInfo.cmake"
  "/root/repo/build/src/testcard/CMakeFiles/goofi_testcard.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/goofi_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/goofi_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/goofi_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/goofi_env.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/goofi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
