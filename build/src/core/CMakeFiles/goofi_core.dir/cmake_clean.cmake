file(REMOVE_RECURSE
  "CMakeFiles/goofi_core.dir/algorithms.cpp.o"
  "CMakeFiles/goofi_core.dir/algorithms.cpp.o.d"
  "CMakeFiles/goofi_core.dir/analysis.cpp.o"
  "CMakeFiles/goofi_core.dir/analysis.cpp.o.d"
  "CMakeFiles/goofi_core.dir/campaign_store.cpp.o"
  "CMakeFiles/goofi_core.dir/campaign_store.cpp.o.d"
  "CMakeFiles/goofi_core.dir/preinjection.cpp.o"
  "CMakeFiles/goofi_core.dir/preinjection.cpp.o.d"
  "CMakeFiles/goofi_core.dir/progress.cpp.o"
  "CMakeFiles/goofi_core.dir/progress.cpp.o.d"
  "CMakeFiles/goofi_core.dir/propagation.cpp.o"
  "CMakeFiles/goofi_core.dir/propagation.cpp.o.d"
  "CMakeFiles/goofi_core.dir/swifi_target.cpp.o"
  "CMakeFiles/goofi_core.dir/swifi_target.cpp.o.d"
  "CMakeFiles/goofi_core.dir/thor_target.cpp.o"
  "CMakeFiles/goofi_core.dir/thor_target.cpp.o.d"
  "CMakeFiles/goofi_core.dir/types.cpp.o"
  "CMakeFiles/goofi_core.dir/types.cpp.o.d"
  "libgoofi_core.a"
  "libgoofi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goofi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
