# Empty dependencies file for goofi_core.
# This may be replaced when dependencies are built.
