# Empty compiler generated dependencies file for goofi_testcard.
# This may be replaced when dependencies are built.
