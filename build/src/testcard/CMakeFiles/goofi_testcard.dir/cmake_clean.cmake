file(REMOVE_RECURSE
  "CMakeFiles/goofi_testcard.dir/testcard.cpp.o"
  "CMakeFiles/goofi_testcard.dir/testcard.cpp.o.d"
  "libgoofi_testcard.a"
  "libgoofi_testcard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goofi_testcard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
