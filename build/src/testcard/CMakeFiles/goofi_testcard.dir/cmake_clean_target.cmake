file(REMOVE_RECURSE
  "libgoofi_testcard.a"
)
