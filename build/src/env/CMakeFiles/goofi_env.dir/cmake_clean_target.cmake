file(REMOVE_RECURSE
  "libgoofi_env.a"
)
