file(REMOVE_RECURSE
  "CMakeFiles/goofi_env.dir/environment.cpp.o"
  "CMakeFiles/goofi_env.dir/environment.cpp.o.d"
  "CMakeFiles/goofi_env.dir/workloads.cpp.o"
  "CMakeFiles/goofi_env.dir/workloads.cpp.o.d"
  "libgoofi_env.a"
  "libgoofi_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goofi_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
