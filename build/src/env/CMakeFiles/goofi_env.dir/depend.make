# Empty dependencies file for goofi_env.
# This may be replaced when dependencies are built.
