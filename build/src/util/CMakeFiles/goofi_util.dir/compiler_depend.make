# Empty compiler generated dependencies file for goofi_util.
# This may be replaced when dependencies are built.
