file(REMOVE_RECURSE
  "libgoofi_util.a"
)
