file(REMOVE_RECURSE
  "CMakeFiles/goofi_util.dir/bitvec.cpp.o"
  "CMakeFiles/goofi_util.dir/bitvec.cpp.o.d"
  "CMakeFiles/goofi_util.dir/crc32.cpp.o"
  "CMakeFiles/goofi_util.dir/crc32.cpp.o.d"
  "CMakeFiles/goofi_util.dir/log.cpp.o"
  "CMakeFiles/goofi_util.dir/log.cpp.o.d"
  "CMakeFiles/goofi_util.dir/rng.cpp.o"
  "CMakeFiles/goofi_util.dir/rng.cpp.o.d"
  "CMakeFiles/goofi_util.dir/status.cpp.o"
  "CMakeFiles/goofi_util.dir/status.cpp.o.d"
  "CMakeFiles/goofi_util.dir/strings.cpp.o"
  "CMakeFiles/goofi_util.dir/strings.cpp.o.d"
  "libgoofi_util.a"
  "libgoofi_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goofi_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
