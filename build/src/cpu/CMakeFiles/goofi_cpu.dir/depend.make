# Empty dependencies file for goofi_cpu.
# This may be replaced when dependencies are built.
