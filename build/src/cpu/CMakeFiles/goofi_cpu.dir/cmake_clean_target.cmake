file(REMOVE_RECURSE
  "libgoofi_cpu.a"
)
