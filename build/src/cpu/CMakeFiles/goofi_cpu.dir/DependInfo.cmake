
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/cache.cpp" "src/cpu/CMakeFiles/goofi_cpu.dir/cache.cpp.o" "gcc" "src/cpu/CMakeFiles/goofi_cpu.dir/cache.cpp.o.d"
  "/root/repo/src/cpu/cpu.cpp" "src/cpu/CMakeFiles/goofi_cpu.dir/cpu.cpp.o" "gcc" "src/cpu/CMakeFiles/goofi_cpu.dir/cpu.cpp.o.d"
  "/root/repo/src/cpu/edm.cpp" "src/cpu/CMakeFiles/goofi_cpu.dir/edm.cpp.o" "gcc" "src/cpu/CMakeFiles/goofi_cpu.dir/edm.cpp.o.d"
  "/root/repo/src/cpu/memory.cpp" "src/cpu/CMakeFiles/goofi_cpu.dir/memory.cpp.o" "gcc" "src/cpu/CMakeFiles/goofi_cpu.dir/memory.cpp.o.d"
  "/root/repo/src/cpu/state.cpp" "src/cpu/CMakeFiles/goofi_cpu.dir/state.cpp.o" "gcc" "src/cpu/CMakeFiles/goofi_cpu.dir/state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/goofi_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/goofi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
