file(REMOVE_RECURSE
  "CMakeFiles/goofi_cpu.dir/cache.cpp.o"
  "CMakeFiles/goofi_cpu.dir/cache.cpp.o.d"
  "CMakeFiles/goofi_cpu.dir/cpu.cpp.o"
  "CMakeFiles/goofi_cpu.dir/cpu.cpp.o.d"
  "CMakeFiles/goofi_cpu.dir/edm.cpp.o"
  "CMakeFiles/goofi_cpu.dir/edm.cpp.o.d"
  "CMakeFiles/goofi_cpu.dir/memory.cpp.o"
  "CMakeFiles/goofi_cpu.dir/memory.cpp.o.d"
  "CMakeFiles/goofi_cpu.dir/state.cpp.o"
  "CMakeFiles/goofi_cpu.dir/state.cpp.o.d"
  "libgoofi_cpu.a"
  "libgoofi_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goofi_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
