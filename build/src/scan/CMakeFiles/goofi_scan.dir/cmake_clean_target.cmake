file(REMOVE_RECURSE
  "libgoofi_scan.a"
)
