file(REMOVE_RECURSE
  "CMakeFiles/goofi_scan.dir/chain.cpp.o"
  "CMakeFiles/goofi_scan.dir/chain.cpp.o.d"
  "CMakeFiles/goofi_scan.dir/debug.cpp.o"
  "CMakeFiles/goofi_scan.dir/debug.cpp.o.d"
  "CMakeFiles/goofi_scan.dir/tap.cpp.o"
  "CMakeFiles/goofi_scan.dir/tap.cpp.o.d"
  "libgoofi_scan.a"
  "libgoofi_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goofi_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
