# Empty compiler generated dependencies file for goofi_scan.
# This may be replaced when dependencies are built.
