
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scan/chain.cpp" "src/scan/CMakeFiles/goofi_scan.dir/chain.cpp.o" "gcc" "src/scan/CMakeFiles/goofi_scan.dir/chain.cpp.o.d"
  "/root/repo/src/scan/debug.cpp" "src/scan/CMakeFiles/goofi_scan.dir/debug.cpp.o" "gcc" "src/scan/CMakeFiles/goofi_scan.dir/debug.cpp.o.d"
  "/root/repo/src/scan/tap.cpp" "src/scan/CMakeFiles/goofi_scan.dir/tap.cpp.o" "gcc" "src/scan/CMakeFiles/goofi_scan.dir/tap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/goofi_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/goofi_util.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/goofi_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
