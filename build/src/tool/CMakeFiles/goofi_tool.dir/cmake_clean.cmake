file(REMOVE_RECURSE
  "CMakeFiles/goofi_tool.dir/shell.cpp.o"
  "CMakeFiles/goofi_tool.dir/shell.cpp.o.d"
  "libgoofi_tool.a"
  "libgoofi_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goofi_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
