file(REMOVE_RECURSE
  "libgoofi_tool.a"
)
