
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tool/shell.cpp" "src/tool/CMakeFiles/goofi_tool.dir/shell.cpp.o" "gcc" "src/tool/CMakeFiles/goofi_tool.dir/shell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/goofi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/goofi_db.dir/DependInfo.cmake"
  "/root/repo/build/src/testcard/CMakeFiles/goofi_testcard.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/goofi_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/goofi_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/goofi_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/goofi_env.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/goofi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
