# Empty compiler generated dependencies file for goofi_tool.
# This may be replaced when dependencies are built.
