file(REMOVE_RECURSE
  "CMakeFiles/goofi_db.dir/database.cpp.o"
  "CMakeFiles/goofi_db.dir/database.cpp.o.d"
  "CMakeFiles/goofi_db.dir/schema.cpp.o"
  "CMakeFiles/goofi_db.dir/schema.cpp.o.d"
  "CMakeFiles/goofi_db.dir/sql_executor.cpp.o"
  "CMakeFiles/goofi_db.dir/sql_executor.cpp.o.d"
  "CMakeFiles/goofi_db.dir/sql_parser.cpp.o"
  "CMakeFiles/goofi_db.dir/sql_parser.cpp.o.d"
  "CMakeFiles/goofi_db.dir/sql_tokenizer.cpp.o"
  "CMakeFiles/goofi_db.dir/sql_tokenizer.cpp.o.d"
  "CMakeFiles/goofi_db.dir/table.cpp.o"
  "CMakeFiles/goofi_db.dir/table.cpp.o.d"
  "CMakeFiles/goofi_db.dir/value.cpp.o"
  "CMakeFiles/goofi_db.dir/value.cpp.o.d"
  "libgoofi_db.a"
  "libgoofi_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goofi_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
