file(REMOVE_RECURSE
  "libgoofi_db.a"
)
