# Empty compiler generated dependencies file for goofi_db.
# This may be replaced when dependencies are built.
