file(REMOVE_RECURSE
  "CMakeFiles/swifi_campaign.dir/swifi_campaign.cpp.o"
  "CMakeFiles/swifi_campaign.dir/swifi_campaign.cpp.o.d"
  "swifi_campaign"
  "swifi_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swifi_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
