# Empty compiler generated dependencies file for swifi_campaign.
# This may be replaced when dependencies are built.
