file(REMOVE_RECURSE
  "CMakeFiles/detail_trace.dir/detail_trace.cpp.o"
  "CMakeFiles/detail_trace.dir/detail_trace.cpp.o.d"
  "detail_trace"
  "detail_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detail_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
