# Empty dependencies file for detail_trace.
# This may be replaced when dependencies are built.
