# Empty compiler generated dependencies file for control_app.
# This may be replaced when dependencies are built.
