file(REMOVE_RECURSE
  "CMakeFiles/control_app.dir/control_app.cpp.o"
  "CMakeFiles/control_app.dir/control_app.cpp.o.d"
  "control_app"
  "control_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
