file(REMOVE_RECURSE
  "CMakeFiles/goofi_shell.dir/goofi_shell.cpp.o"
  "CMakeFiles/goofi_shell.dir/goofi_shell.cpp.o.d"
  "goofi_shell"
  "goofi_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goofi_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
