# Empty dependencies file for goofi_shell.
# This may be replaced when dependencies are built.
