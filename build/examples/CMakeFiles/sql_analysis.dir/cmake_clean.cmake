file(REMOVE_RECURSE
  "CMakeFiles/sql_analysis.dir/sql_analysis.cpp.o"
  "CMakeFiles/sql_analysis.dir/sql_analysis.cpp.o.d"
  "sql_analysis"
  "sql_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
