# Empty dependencies file for sql_analysis.
# This may be replaced when dependencies are built.
