# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/assembler_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/scan_test[1]_include.cmake")
include("/root/repo/build/tests/testcard_test[1]_include.cmake")
include("/root/repo/build/tests/env_test[1]_include.cmake")
include("/root/repo/build/tests/core_types_test[1]_include.cmake")
include("/root/repo/build/tests/campaign_store_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/algorithms_test[1]_include.cmake")
include("/root/repo/build/tests/preinjection_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/propagation_test[1]_include.cmake")
include("/root/repo/build/tests/swifi_target_test[1]_include.cmake")
include("/root/repo/build/tests/tool_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_property_test[1]_include.cmake")
include("/root/repo/build/tests/db_property_test[1]_include.cmake")
