# Empty dependencies file for preinjection_test.
# This may be replaced when dependencies are built.
