file(REMOVE_RECURSE
  "CMakeFiles/preinjection_test.dir/preinjection_test.cpp.o"
  "CMakeFiles/preinjection_test.dir/preinjection_test.cpp.o.d"
  "preinjection_test"
  "preinjection_test.pdb"
  "preinjection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preinjection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
