# Empty dependencies file for campaign_store_test.
# This may be replaced when dependencies are built.
