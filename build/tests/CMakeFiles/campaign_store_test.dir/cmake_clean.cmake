file(REMOVE_RECURSE
  "CMakeFiles/campaign_store_test.dir/campaign_store_test.cpp.o"
  "CMakeFiles/campaign_store_test.dir/campaign_store_test.cpp.o.d"
  "campaign_store_test"
  "campaign_store_test.pdb"
  "campaign_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campaign_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
