file(REMOVE_RECURSE
  "CMakeFiles/swifi_target_test.dir/swifi_target_test.cpp.o"
  "CMakeFiles/swifi_target_test.dir/swifi_target_test.cpp.o.d"
  "swifi_target_test"
  "swifi_target_test.pdb"
  "swifi_target_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swifi_target_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
