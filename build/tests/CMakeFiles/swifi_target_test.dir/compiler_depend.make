# Empty compiler generated dependencies file for swifi_target_test.
# This may be replaced when dependencies are built.
