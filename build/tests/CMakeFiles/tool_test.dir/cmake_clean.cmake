file(REMOVE_RECURSE
  "CMakeFiles/tool_test.dir/tool_test.cpp.o"
  "CMakeFiles/tool_test.dir/tool_test.cpp.o.d"
  "tool_test"
  "tool_test.pdb"
  "tool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
