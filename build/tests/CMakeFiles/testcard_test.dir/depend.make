# Empty dependencies file for testcard_test.
# This may be replaced when dependencies are built.
