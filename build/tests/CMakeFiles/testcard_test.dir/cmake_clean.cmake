file(REMOVE_RECURSE
  "CMakeFiles/testcard_test.dir/testcard_test.cpp.o"
  "CMakeFiles/testcard_test.dir/testcard_test.cpp.o.d"
  "testcard_test"
  "testcard_test.pdb"
  "testcard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testcard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
