file(REMOVE_RECURSE
  "CMakeFiles/bench_control_app.dir/bench_control_app.cpp.o"
  "CMakeFiles/bench_control_app.dir/bench_control_app.cpp.o.d"
  "bench_control_app"
  "bench_control_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_control_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
