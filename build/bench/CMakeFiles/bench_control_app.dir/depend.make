# Empty dependencies file for bench_control_app.
# This may be replaced when dependencies are built.
