file(REMOVE_RECURSE
  "CMakeFiles/bench_error_classification.dir/bench_error_classification.cpp.o"
  "CMakeFiles/bench_error_classification.dir/bench_error_classification.cpp.o.d"
  "bench_error_classification"
  "bench_error_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_error_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
