# Empty dependencies file for bench_error_classification.
# This may be replaced when dependencies are built.
