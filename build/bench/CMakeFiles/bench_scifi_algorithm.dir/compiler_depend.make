# Empty compiler generated dependencies file for bench_scifi_algorithm.
# This may be replaced when dependencies are built.
