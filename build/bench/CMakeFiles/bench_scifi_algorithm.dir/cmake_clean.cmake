file(REMOVE_RECURSE
  "CMakeFiles/bench_scifi_algorithm.dir/bench_scifi_algorithm.cpp.o"
  "CMakeFiles/bench_scifi_algorithm.dir/bench_scifi_algorithm.cpp.o.d"
  "bench_scifi_algorithm"
  "bench_scifi_algorithm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scifi_algorithm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
