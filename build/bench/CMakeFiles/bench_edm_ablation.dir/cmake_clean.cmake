file(REMOVE_RECURSE
  "CMakeFiles/bench_edm_ablation.dir/bench_edm_ablation.cpp.o"
  "CMakeFiles/bench_edm_ablation.dir/bench_edm_ablation.cpp.o.d"
  "bench_edm_ablation"
  "bench_edm_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_edm_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
