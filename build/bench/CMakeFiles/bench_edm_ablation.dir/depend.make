# Empty dependencies file for bench_edm_ablation.
# This may be replaced when dependencies are built.
