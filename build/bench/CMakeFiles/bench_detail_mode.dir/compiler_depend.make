# Empty compiler generated dependencies file for bench_detail_mode.
# This may be replaced when dependencies are built.
