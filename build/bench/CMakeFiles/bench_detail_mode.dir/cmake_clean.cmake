file(REMOVE_RECURSE
  "CMakeFiles/bench_detail_mode.dir/bench_detail_mode.cpp.o"
  "CMakeFiles/bench_detail_mode.dir/bench_detail_mode.cpp.o.d"
  "bench_detail_mode"
  "bench_detail_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_detail_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
