# Empty dependencies file for bench_preinjection.
# This may be replaced when dependencies are built.
