file(REMOVE_RECURSE
  "CMakeFiles/bench_preinjection.dir/bench_preinjection.cpp.o"
  "CMakeFiles/bench_preinjection.dir/bench_preinjection.cpp.o.d"
  "bench_preinjection"
  "bench_preinjection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_preinjection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
