# Empty compiler generated dependencies file for bench_database.
# This may be replaced when dependencies are built.
