file(REMOVE_RECURSE
  "CMakeFiles/bench_database.dir/bench_database.cpp.o"
  "CMakeFiles/bench_database.dir/bench_database.cpp.o.d"
  "bench_database"
  "bench_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
