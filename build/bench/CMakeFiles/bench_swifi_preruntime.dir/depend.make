# Empty dependencies file for bench_swifi_preruntime.
# This may be replaced when dependencies are built.
