file(REMOVE_RECURSE
  "CMakeFiles/bench_swifi_preruntime.dir/bench_swifi_preruntime.cpp.o"
  "CMakeFiles/bench_swifi_preruntime.dir/bench_swifi_preruntime.cpp.o.d"
  "bench_swifi_preruntime"
  "bench_swifi_preruntime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_swifi_preruntime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
