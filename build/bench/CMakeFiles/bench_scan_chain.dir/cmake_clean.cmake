file(REMOVE_RECURSE
  "CMakeFiles/bench_scan_chain.dir/bench_scan_chain.cpp.o"
  "CMakeFiles/bench_scan_chain.dir/bench_scan_chain.cpp.o.d"
  "bench_scan_chain"
  "bench_scan_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scan_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
