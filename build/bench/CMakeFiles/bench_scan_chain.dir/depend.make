# Empty dependencies file for bench_scan_chain.
# This may be replaced when dependencies are built.
