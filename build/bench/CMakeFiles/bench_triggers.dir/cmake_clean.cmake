file(REMOVE_RECURSE
  "CMakeFiles/bench_triggers.dir/bench_triggers.cpp.o"
  "CMakeFiles/bench_triggers.dir/bench_triggers.cpp.o.d"
  "bench_triggers"
  "bench_triggers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_triggers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
