# Empty dependencies file for bench_fault_models.
# This may be replaced when dependencies are built.
