// Control application study: executable assertions and best-effort recovery
// (the use-case of the companion paper, GOOFI's first deployment — ref [12]
// "Reducing Critical Failures for Control Algorithms Using Executable
// Assertions and Best Effort Recovery", DSN 2001).
//
// Three variants of a PD controller stabilize a (linearized) inverted
// pendulum while SCIFI faults hit the register file:
//   pendulum_pd         - unprotected controller
//   pendulum_pd_assert  - assertions clamp the actuator command (recovery)
//   pendulum_pd_trap    - assertions fail-stop via TRAP
//
// The interesting measure is the number of *critical failures*: experiments
// in which the plant left its safe envelope (the pendulum fell).
//
// Usage: control_app [num_experiments]

#include <cstdio>
#include <cstdlib>

#include "core/goofi.hpp"
#include "db/database.hpp"
#include "testcard/testcard.hpp"

using namespace goofi;

namespace {

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

struct VariantResult {
  std::string workload;
  int critical_failures = 0;  // plant fell
  int detected = 0;
  int escaped = 0;
  int non_effective = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const int num_experiments = argc > 1 ? std::atoi(argv[1]) : 300;

  db::Database database;
  core::CampaignStore store(&database);
  testcard::SimTestCard card;
  if (auto st = store.PutTargetSystem(core::ThorRdTarget::DescribeTarget(
          card, core::ThorRdTarget::kTargetName));
      !st.ok()) {
    return Fail(st);
  }
  core::ThorRdTarget target(&store, &card);

  std::vector<VariantResult> results;
  for (const char* workload :
       {"pendulum_pd", "pendulum_pd_assert", "pendulum_pd_trap"}) {
    core::CampaignData campaign;
    campaign.name = std::string("control_") + workload;
    campaign.target_name = core::ThorRdTarget::kTargetName;
    campaign.technique = core::Technique::kScifi;
    campaign.fault_model = core::FaultModelKind::kTransientBitFlip;
    campaign.num_experiments = num_experiments;
    campaign.workload = workload;
    campaign.locations = {{"internal_regfile", ""}};
    campaign.inject_min_instr = 50;
    campaign.inject_max_instr = 3000;
    campaign.max_iterations = 250;
    campaign.timeout_cycles = 500000;
    if (auto st = store.PutCampaign(campaign); !st.ok()) return Fail(st);
    if (auto st = target.FaultInjectorScifi(campaign.name); !st.ok()) {
      return Fail(st);
    }

    auto rows = store.ExperimentsOf(campaign.name);
    if (!rows.ok()) return Fail(rows.status());
    auto reference =
        store.GetExperiment(core::CampaignStore::ReferenceName(campaign.name));
    if (!reference.ok()) return Fail(reference.status());

    VariantResult result;
    result.workload = workload;
    for (const auto& row : rows.value()) {
      if (!row.parent_experiment.empty() ||
          row.experiment_name == reference.value().experiment_name) {
        continue;
      }
      if (row.state.env_failed) ++result.critical_failures;
      const auto cls = core::Classify(reference.value().state, row.state);
      switch (cls.outcome) {
        case core::Outcome::kDetected:
          ++result.detected;
          break;
        case core::Outcome::kEscaped:
          ++result.escaped;
          break;
        default:
          ++result.non_effective;
      }
    }
    results.push_back(std::move(result));
  }

  std::printf("%-22s %10s %10s %10s %16s\n", "controller", "detected",
              "escaped", "non-eff", "critical (fell)");
  for (const VariantResult& r : results) {
    std::printf("%-22s %10d %10d %10d %16d\n", r.workload.c_str(), r.detected,
                r.escaped, r.non_effective, r.critical_failures);
  }
  std::printf(
      "\nExpected shape (companion paper [12]): assertions with recovery cut\n"
      "critical failures versus the unprotected controller; fail-stop\n"
      "assertions convert failures into detections.\n");
  return 0;
}
