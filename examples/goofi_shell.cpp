// goofi_shell: the GOOFI tool as an interactive/scriptable command shell —
// the CLI equivalent of the paper's GUI (Figs. 5-7).
//
// Usage:
//   goofi_shell                 read commands from stdin
//   goofi_shell <script-file>   execute a script
//   goofi_shell -c '<command>'  execute one command
//
// Example session:
//   target describe thor-rd-sim
//   campaign set demo workload=bubblesort locations=internal_regfile
//       experiments=100 window=1:1000      (one line in the shell)
//   run demo
//   analyze demo
//   sql SELECT COUNT(*) FROM LoggedSystemState

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/goofi.hpp"
#include "db/database.hpp"
#include "testcard/testcard.hpp"
#include "tool/shell.hpp"
#include "util/strings.hpp"

using namespace goofi;

int main(int argc, char** argv) {
  db::Database database;
  core::CampaignStore store(&database);
  testcard::SimTestCard card;
  core::ThorRdTarget target(&store, &card);
  core::ConsoleProgressMonitor progress(50);
  target.SetProgressMonitor(&progress);

  tool::Shell shell(&database, &store);
  shell.AddTarget(core::ThorRdTarget::kTargetName, &target, &card,
                  core::MakeSimThorFactory(&store));
  // Register the target description up front so campaigns can be defined
  // immediately (configuration phase, Fig. 5).
  if (auto st = shell.Execute(std::string("target describe ") +
                              core::ThorRdTarget::kTargetName);
      !st.ok()) {
    std::fprintf(stderr, "init failed: %s\n", st.status().ToString().c_str());
    return 1;
  }

  if (argc >= 3 && std::string(argv[1]) == "-c") {
    auto result = shell.Execute(argv[2]);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::fputs(result.value().c_str(), stdout);
    return 0;
  }

  if (argc >= 2) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open script %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string transcript;
    const util::Status st = shell.ExecuteScript(buffer.str(), &transcript);
    std::fputs(transcript.c_str(), stdout);
    return st.ok() ? 0 : 1;
  }

  // Interactive.
  std::string line;
  std::fputs("GOOFI shell (type 'help'; ctrl-d to exit)\n", stdout);
  while (true) {
    std::fputs("goofi> ", stdout);
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (util::Trim(line) == "quit" || util::Trim(line) == "exit") break;
    auto result = shell.Execute(line);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
    } else {
      std::fputs(result.value().c_str(), stdout);
    }
  }
  return 0;
}
