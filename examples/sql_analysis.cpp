// Analysis through SQL, the way the paper expects users to work (§3.4):
// "The user must write tailor made scripts or programs that query the
// database for the required information."
//
// Runs a campaign, then issues SQL directly against the GOOFI tables —
// including the foreign-key relations of Fig. 4 — and finally saves the
// database to disk and loads it back (host portability: "all data is saved
// in a SQL compatible database").
//
// Usage: sql_analysis [db_path]

#include <cstdio>

#include "core/goofi.hpp"
#include "db/database.hpp"
#include "db/sql_executor.hpp"
#include "testcard/testcard.hpp"

using namespace goofi;

namespace {

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

void Query(db::Database& database, const std::string& sql) {
  std::printf("sql> %s\n", sql.c_str());
  auto result = db::ExecuteSql(database, sql);
  if (!result.ok()) {
    std::printf("  -> %s\n\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s\n", result.value().ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string db_path = argc > 1 ? argv[1] : "/tmp/goofi_quickstart.db";

  db::Database database;
  core::CampaignStore store(&database);
  testcard::SimTestCard card;
  if (auto st = store.PutTargetSystem(core::ThorRdTarget::DescribeTarget(
          card, core::ThorRdTarget::kTargetName));
      !st.ok()) {
    return Fail(st);
  }

  core::CampaignData campaign;
  campaign.name = "sqldemo";
  campaign.target_name = core::ThorRdTarget::kTargetName;
  campaign.technique = core::Technique::kScifi;
  campaign.num_experiments = 120;
  campaign.workload = "checksum";
  campaign.locations = {{"internal_regfile", ""}, {"internal_core", ""}};
  campaign.inject_max_instr = 600;
  campaign.timeout_cycles = 100000;
  if (auto st = store.PutCampaign(campaign); !st.ok()) return Fail(st);

  core::ThorRdTarget target(&store, &card);
  if (auto st = target.FaultInjectorScifi(campaign.name); !st.ok()) {
    return Fail(st);
  }

  // Tailor-made analysis queries, straight SQL.
  Query(database,
        "SELECT campaignName, COUNT(*) AS experiments FROM LoggedSystemState "
        "WHERE parentExperiment IS NULL GROUP BY campaignName");
  Query(database,
        "SELECT c.workload, c.numExperiments, c.faultModel "
        "FROM CampaignData c JOIN TargetSystemData t "
        "ON c.targetName = t.targetName");
  Query(database,
        "SELECT experimentName FROM LoggedSystemState "
        "WHERE experimentData != 'detail_step' ORDER BY experimentName "
        "LIMIT 5");

  // Foreign keys prevent inconsistencies (Fig. 4): deleting a campaign that
  // still owns experiments is refused.
  Query(database, "DELETE FROM CampaignData WHERE campaignName = 'sqldemo'");

  // Persist and reload.
  if (auto st = database.Save(db_path); !st.ok()) return Fail(st);
  db::Database reloaded;
  if (auto st = reloaded.Load(db_path); !st.ok()) return Fail(st);
  Query(reloaded,
        "SELECT COUNT(*) AS rows_after_reload FROM LoggedSystemState");
  std::printf("database round-tripped through %s\n", db_path.c_str());
  return 0;
}
