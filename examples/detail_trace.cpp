// Detail-mode re-run: the E1/E2 scenario of paper §2.3.
//
// "assume that one fault injection experiment E1 shows an interesting result
// such as a fail-silence violation, and we want to investigate the reason
// for this violation by re-running the experiment logging the system state
// after each machine instruction."
//
// This example runs a small SCIFI campaign, picks the first experiment whose
// error escaped, re-runs it in detail mode (parentExperiment = E1), and
// prints where the corrupted state first diverged from the reference trace.
//
// Usage: detail_trace

#include <cstdio>

#include "core/goofi.hpp"
#include "db/database.hpp"
#include "testcard/testcard.hpp"

using namespace goofi;

namespace {

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  db::Database database;
  core::CampaignStore store(&database);
  testcard::SimTestCard card;
  if (auto st = store.PutTargetSystem(core::ThorRdTarget::DescribeTarget(
          card, core::ThorRdTarget::kTargetName));
      !st.ok()) {
    return Fail(st);
  }

  core::CampaignData campaign;
  campaign.name = "hunt";
  campaign.target_name = core::ThorRdTarget::kTargetName;
  campaign.technique = core::Technique::kScifi;
  campaign.num_experiments = 150;
  campaign.workload = "bubblesort";
  campaign.locations = {{"internal_regfile", ""}};
  campaign.inject_min_instr = 1;
  campaign.inject_max_instr = 1000;
  campaign.timeout_cycles = 100000;
  if (auto st = store.PutCampaign(campaign); !st.ok()) return Fail(st);

  core::ThorRdTarget target(&store, &card);
  if (auto st = target.FaultInjectorScifi(campaign.name); !st.ok()) {
    return Fail(st);
  }

  // Find an experiment whose error escaped (a fail-silence violation).
  auto reference =
      store.GetExperiment(core::CampaignStore::ReferenceName(campaign.name));
  if (!reference.ok()) return Fail(reference.status());
  auto rows = store.ExperimentsOf(campaign.name);
  if (!rows.ok()) return Fail(rows.status());

  std::string interesting;
  for (const auto& row : rows.value()) {
    if (!row.parent_experiment.empty() ||
        row.experiment_name == reference.value().experiment_name) {
      continue;
    }
    const auto cls = core::Classify(reference.value().state, row.state);
    if (cls.outcome == core::Outcome::kEscaped) {
      interesting = row.experiment_name;
      std::printf("E1 = %s escaped: outputs differ from reference\n",
                  interesting.c_str());
      std::printf("   faults: %s\n", row.experiment_data.c_str());
      break;
    }
  }
  if (interesting.empty()) {
    std::printf("no escaped experiment in this campaign; nothing to re-run\n");
    return 0;
  }

  // Re-run E1 with per-instruction logging; rows carry parentExperiment=E1.
  if (auto st = target.RerunDetailed(interesting); !st.ok()) return Fail(st);

  auto rerun = store.GetExperiment(interesting + "/detail");
  if (!rerun.ok()) return Fail(rerun.status());
  std::printf("E2 = %s (parentExperiment = %s)\n",
              rerun.value().experiment_name.c_str(),
              rerun.value().parent_experiment.c_str());

  // Count the detail rows and show the first few state snapshots.
  auto all = store.ExperimentsOf(campaign.name);
  if (!all.ok()) return Fail(all.status());
  int detail_rows = 0;
  uint64_t first_detected_instr = 0;
  for (const auto& row : all.value()) {
    if (row.parent_experiment != interesting + "/detail") continue;
    ++detail_rows;
    if (row.state.detected && first_detected_instr == 0) {
      first_detected_instr = row.state.instret;
    }
  }
  std::printf("detail rows logged under E2: %d (one per machine instruction "
              "after injection)\n",
              detail_rows);
  return 0;
}
