// Pre-runtime SWIFI campaign: faults are injected into the program and data
// areas of the target before it starts to execute (paper §1).
//
// Runs two campaigns on the matrix-multiply workload — one corrupting the
// text segment, one the data segment — and contrasts their outcome
// profiles: text faults tend to be detected (illegal opcodes, control-flow
// errors), data faults tend to escape as wrong results.
//
// Usage: swifi_campaign [num_experiments]

#include <cstdio>
#include <cstdlib>

#include "core/goofi.hpp"
#include "db/database.hpp"
#include "testcard/testcard.hpp"

using namespace goofi;

namespace {

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const int num_experiments = argc > 1 ? std::atoi(argv[1]) : 300;

  db::Database database;
  core::CampaignStore store(&database);
  testcard::SimTestCard card;
  if (auto st = store.PutTargetSystem(core::ThorRdTarget::DescribeTarget(
          card, core::ThorRdTarget::kTargetName));
      !st.ok()) {
    return Fail(st);
  }

  core::ThorRdTarget target(&store, &card);

  for (const char* segment : {"memory.text", "memory.data"}) {
    core::CampaignData campaign;
    campaign.name = std::string("swifi_") + segment;
    campaign.target_name = core::ThorRdTarget::kTargetName;
    campaign.technique = core::Technique::kSwifiPreRuntime;
    campaign.fault_model = core::FaultModelKind::kTransientBitFlip;
    campaign.num_experiments = num_experiments;
    campaign.workload = "matmul";
    campaign.locations = {{segment, ""}};
    campaign.inject_min_instr = 0;  // pre-runtime: time is moot
    campaign.inject_max_instr = 0;
    campaign.timeout_cycles = 200000;
    if (auto st = store.PutCampaign(campaign); !st.ok()) return Fail(st);

    if (auto st = target.FaultInjectorSwifiPreRuntime(campaign.name); !st.ok()) {
      return Fail(st);
    }
    auto report = core::AnalyzeCampaign(store, campaign.name);
    if (!report.ok()) return Fail(report.status());
    std::printf("=== pre-runtime SWIFI into %s ===\n%s\n", segment,
                report.value().ToString().c_str());
  }
  return 0;
}
