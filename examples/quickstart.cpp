// Quickstart: a complete GOOFI session in ~60 lines.
//
// Walks the paper's four phases (§3): configuration (describe the target),
// set-up (define a campaign), fault injection (run it) and analysis
// (classify the logged experiments).
//
// Usage: quickstart [num_experiments]

#include <cstdio>
#include <cstdlib>

#include "core/goofi.hpp"
#include "db/database.hpp"
#include "testcard/testcard.hpp"

using namespace goofi;

int main(int argc, char** argv) {
  const int num_experiments = argc > 1 ? std::atoi(argv[1]) : 200;

  // The database (lowest layer of Fig. 1) and its GOOFI tables (Fig. 4).
  db::Database database;
  core::CampaignStore store(&database);

  // The target system: a simulated Thor RD behind a test card.
  testcard::SimTestCard card;

  // Configuration phase (Fig. 5): store the target's scan-chain layout.
  const core::TargetSystemData target_desc = core::ThorRdTarget::DescribeTarget(
      card, core::ThorRdTarget::kTargetName);
  if (auto st = store.PutTargetSystem(target_desc); !st.ok()) {
    std::fprintf(stderr, "target setup failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Set-up phase (Fig. 6): a SCIFI campaign injecting single transient
  // bit flips into the register file and core registers while the
  // bubble-sort workload runs.
  core::CampaignData campaign;
  campaign.name = "quickstart";
  campaign.target_name = core::ThorRdTarget::kTargetName;
  campaign.technique = core::Technique::kScifi;
  campaign.fault_model = core::FaultModelKind::kTransientBitFlip;
  campaign.num_experiments = num_experiments;
  campaign.workload = "bubblesort";
  campaign.locations = {{"internal_regfile", ""}, {"internal_core", ""}};
  campaign.inject_min_instr = 1;
  campaign.inject_max_instr = 1200;
  campaign.timeout_cycles = 100000;
  if (auto st = store.PutCampaign(campaign); !st.ok()) {
    std::fprintf(stderr, "campaign setup failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Fault-injection phase (Fig. 2): run the SCIFI algorithm.
  core::ThorRdTarget target(&store, &card);
  core::ConsoleProgressMonitor progress(num_experiments / 4);
  target.SetProgressMonitor(&progress);
  if (auto st = target.FaultInjectorScifi(campaign.name); !st.ok()) {
    std::fprintf(stderr, "campaign failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Analysis phase (§3.4): classify against the reference run.
  auto report = core::AnalyzeCampaign(store, campaign.name);
  if (!report.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report.value().ToString().c_str());

  auto by_group = core::AnalyzeByLocationGroup(store, campaign.name);
  if (by_group.ok()) {
    std::printf("breakdown by fault-location group:\n");
    for (const auto& [group, sub] : by_group.value()) {
      std::printf(
          "  %-10s detected %3d  escaped %3d  latent %3d  overwritten %3d\n",
          group.c_str(), sub.Count(core::Outcome::kDetected),
          sub.Count(core::Outcome::kEscaped), sub.Count(core::Outcome::kLatent),
          sub.Count(core::Outcome::kOverwritten));
    }
  }
  return 0;
}
