#!/usr/bin/env bash
# Performance tracking: builds and runs the JSON-emitting benchmarks and
# leaves one BENCH_<name>.json per benchmark in the build directory.
#
# Currently covered:
#   BENCH_checkpoint.json — experiments/sec cold vs warm (checkpoint
#   fast-forward, E13), swept over interval x injection distribution x
#   worker count, plus the cache memory footprint per interval.
#   BENCH_cpu_throughput.json — simulator MIPS, reference interpreter vs
#   predecoded superblock fast path (E14), per workload + geomean.
#
# Usage: scripts/bench.sh [build-dir]     (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

# Only pin the build type on a fresh directory: re-specifying it on an
# existing one with a different type forces a full rebuild.
if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
cmake --build "$BUILD_DIR" -j "$JOBS" \
    --target bench_checkpoint_fastforward bench_cpu_throughput

"$BUILD_DIR"/bench/bench_checkpoint_fastforward \
    --json "$BUILD_DIR"/BENCH_checkpoint.json

"$BUILD_DIR"/bench/bench_cpu_throughput \
    --json "$BUILD_DIR"/BENCH_cpu_throughput.json

echo "bench: OK ($BUILD_DIR/BENCH_checkpoint.json, $BUILD_DIR/BENCH_cpu_throughput.json)"
