#!/usr/bin/env bash
# Performance tracking: builds and runs the JSON-emitting benchmarks, leaves
# one BENCH_<name>.json per benchmark in the build directory, and aggregates
# them into BENCH_PR10.json at the repo root.
#
# Currently covered:
#   BENCH_checkpoint.json — experiments/sec cold vs warm (checkpoint
#   fast-forward, E13), swept over interval x injection distribution x
#   worker count, plus the cache memory footprint per interval.
#   BENCH_cpu_throughput.json — simulator MIPS, reference interpreter vs
#   predecoded superblock fast path (E14), per workload + geomean.
#   BENCH_convergence_pruning.json — experiments/sec unpruned vs warm-only
#   vs pruned (golden-trace convergence pruning, E15), swept over fault
#   location class x injection distribution x trace interval.
#   BENCH_database.json — indexed query engine vs full scans on a 100k-row
#   campaign archive (E16): equality/range/IS NULL probes, the analysis
#   join, prepared-vs-reparsed statements, insert index-maintenance cost.
#   BENCH_equivalence_dedup.json — experiments/sec plain vs warm vs pruned
#   vs equivalence-classed dedup (E17), swept over fault location class
#   (SCIFI regfile, runtime-SWIFI memory) x sampling density, plus class
#   and synthesized-experiment counts per cell.
#   BENCH_archive_io.json — campaign archive I/O (E18): binary columnar
#   snapshot save/load vs the legacy text format, per-batch WAL group commit
#   vs full-file rewrite, and snapshot+WAL recovery cost with a byte-identity
#   self-check.
#   BENCH_memory_reset.json — zero-copy experiment reset (E19): COW paged
#   memory reset/restore throughput vs the flat full-copy reference,
#   setup-dominated campaign experiments/sec, and per-worker resident bytes
#   with the golden workload image interned once per campaign.
#   BENCH_static_prune.json — static fault-space pruning (E20): run-static
#   (no-effect classes from CFG + dataflow analysis alone, no golden pre-run)
#   vs cold and vs timeline-driven run-dedup, on a dense never-accessed
#   register cell and a sparse never-read memory cell, plus prune rates and
#   the timeline-vs-static preparation cost.
#
# Usage: scripts/bench.sh [build-dir]     (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

# Only pin the build type on a fresh directory: re-specifying it on an
# existing one with a different type forces a full rebuild.
if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
cmake --build "$BUILD_DIR" -j "$JOBS" \
    --target bench_checkpoint_fastforward bench_cpu_throughput \
             bench_convergence_pruning bench_database bench_equivalence_dedup \
             bench_archive_io bench_memory_reset bench_static_prune

"$BUILD_DIR"/bench/bench_checkpoint_fastforward \
    --json "$BUILD_DIR"/BENCH_checkpoint.json

"$BUILD_DIR"/bench/bench_cpu_throughput \
    --json "$BUILD_DIR"/BENCH_cpu_throughput.json

"$BUILD_DIR"/bench/bench_convergence_pruning \
    --json "$BUILD_DIR"/BENCH_convergence_pruning.json

"$BUILD_DIR"/bench/bench_database \
    --json "$BUILD_DIR"/BENCH_database.json

"$BUILD_DIR"/bench/bench_equivalence_dedup \
    --json "$BUILD_DIR"/BENCH_equivalence_dedup.json

"$BUILD_DIR"/bench/bench_archive_io \
    --json "$BUILD_DIR"/BENCH_archive_io.json

"$BUILD_DIR"/bench/bench_memory_reset \
    --json "$BUILD_DIR"/BENCH_memory_reset.json

"$BUILD_DIR"/bench/bench_static_prune \
    --json "$BUILD_DIR"/BENCH_static_prune.json

# One aggregate file at the repo root: nested objects keyed by benchmark.
# Each per-bench file is a single flat JSON object on one line.
{
  printf '{\n'
  printf '  "checkpoint": %s,\n' "$(cat "$BUILD_DIR"/BENCH_checkpoint.json)"
  printf '  "cpu_throughput": %s,\n' "$(cat "$BUILD_DIR"/BENCH_cpu_throughput.json)"
  printf '  "convergence_pruning": %s,\n' "$(cat "$BUILD_DIR"/BENCH_convergence_pruning.json)"
  printf '  "database": %s,\n' "$(cat "$BUILD_DIR"/BENCH_database.json)"
  printf '  "equivalence_dedup": %s,\n' "$(cat "$BUILD_DIR"/BENCH_equivalence_dedup.json)"
  printf '  "archive_io": %s,\n' "$(cat "$BUILD_DIR"/BENCH_archive_io.json)"
  printf '  "memory_reset": %s,\n' "$(cat "$BUILD_DIR"/BENCH_memory_reset.json)"
  printf '  "static_prune": %s\n' "$(cat "$BUILD_DIR"/BENCH_static_prune.json)"
  printf '}\n'
} > BENCH_PR10.json

echo "bench: OK (BENCH_PR10.json; per-bench JSON in $BUILD_DIR/)"
