#!/usr/bin/env bash
# Tier-1 gate: full build + test suite, then a ThreadSanitizer pass over the
# concurrency-sensitive tests (thread pool + parallel campaign determinism).
#
# Usage: scripts/tier1.sh [build-dir]     (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1: standard build (-Werror) + ctest =="
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGOOFI_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== tier-1: clang-tidy over src/ (see .clang-tidy) =="
if command -v clang-tidy >/dev/null 2>&1; then
  # The standard build exports compile_commands.json (CMakeLists.txt sets
  # CMAKE_EXPORT_COMPILE_COMMANDS); run the tuned check set over every
  # source file in src/.
  find src -name '*.cpp' -print0 \
    | xargs -0 -n 8 -P "$JOBS" clang-tidy -p "$BUILD_DIR" --quiet
else
  echo "clang-tidy not installed; skipping lint stanza (gcc -Werror still ran)"
fi

echo "== tier-1: ThreadSanitizer pass (parallel runner + thread pool + checkpoints + convergence + equivalence + archive commits + COW golden sharing + static pruning) =="
TSAN_DIR="${BUILD_DIR}-tsan"
cmake -B "$TSAN_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGOOFI_SANITIZE=thread
cmake --build "$TSAN_DIR" -j "$JOBS" --target thread_pool_test parallel_runner_test checkpoint_test convergence_test equivalence_test archive_test memory_cow_test static_analysis_test
"$TSAN_DIR"/tests/thread_pool_test
"$TSAN_DIR"/tests/parallel_runner_test
"$TSAN_DIR"/tests/checkpoint_test
"$TSAN_DIR"/tests/convergence_test
"$TSAN_DIR"/tests/equivalence_test
"$TSAN_DIR"/tests/archive_test --gtest_filter='ArchiveRunnerTest.*'
"$TSAN_DIR"/tests/memory_cow_test --gtest_filter='MemoryCowRunnerTest.*'
"$TSAN_DIR"/tests/static_analysis_test --gtest_filter='RunStaticTest.*'

echo "== tier-1: ASan pass (superblock fast-path differential fuzzer) =="
ASAN_DIR="${BUILD_DIR}-asan"
cmake -B "$ASAN_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGOOFI_SANITIZE=address
cmake --build "$ASAN_DIR" -j "$JOBS" --target cpu_fastpath_test convergence_test sql_index_test equivalence_test archive_test memory_cow_test static_analysis_test
"$ASAN_DIR"/tests/cpu_fastpath_test

echo "== tier-1: ASan pass (COW paged memory differential fuzzer) =="
"$ASAN_DIR"/tests/memory_cow_test

echo "== tier-1: ASan pass (state-hash / canonical-memory fuzzers) =="
"$ASAN_DIR"/tests/convergence_test --gtest_filter='*Fuzz*'

echo "== tier-1: ASan pass (equivalence-classing spot-check fuzzer) =="
"$ASAN_DIR"/tests/equivalence_test --gtest_filter='*Fuzz*'

echo "== tier-1: ASan pass (static analyzer differential + run-static identity) =="
"$ASAN_DIR"/tests/static_analysis_test

echo "== tier-1: ASan pass (indexed-vs-scan SQL differential suite) =="
"$ASAN_DIR"/tests/sql_index_test

echo "== tier-1: ASan pass (archive codec/snapshot/WAL-recovery suite) =="
"$ASAN_DIR"/tests/archive_test

echo "== tier-1: UBSan pass (superblock fast-path differential fuzzer) =="
UBSAN_DIR="${BUILD_DIR}-ubsan"
cmake -B "$UBSAN_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGOOFI_SANITIZE=undefined
cmake --build "$UBSAN_DIR" -j "$JOBS" --target cpu_fastpath_test
"$UBSAN_DIR"/tests/cpu_fastpath_test

echo "== tier-1: checkpoint fast-forward benchmark (BENCH_checkpoint.json) =="
cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_checkpoint_fastforward
"$BUILD_DIR"/bench/bench_checkpoint_fastforward --json "$BUILD_DIR"/BENCH_checkpoint.json

echo "== tier-1: simulator throughput benchmark (BENCH_cpu_throughput.json) =="
cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_cpu_throughput
"$BUILD_DIR"/bench/bench_cpu_throughput --json "$BUILD_DIR"/BENCH_cpu_throughput.json

echo "== tier-1: convergence pruning benchmark (BENCH_convergence_pruning.json) =="
cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_convergence_pruning
"$BUILD_DIR"/bench/bench_convergence_pruning --json "$BUILD_DIR"/BENCH_convergence_pruning.json

echo "== tier-1: indexed query engine benchmark (BENCH_database.json) =="
cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_database
"$BUILD_DIR"/bench/bench_database --json "$BUILD_DIR"/BENCH_database.json

echo "== tier-1: equivalence classing benchmark (BENCH_equivalence_dedup.json) =="
cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_equivalence_dedup
"$BUILD_DIR"/bench/bench_equivalence_dedup --json "$BUILD_DIR"/BENCH_equivalence_dedup.json

echo "== tier-1: campaign archive I/O benchmark (BENCH_archive_io.json) =="
cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_archive_io
"$BUILD_DIR"/bench/bench_archive_io --json "$BUILD_DIR"/BENCH_archive_io.json

echo "== tier-1: zero-copy experiment reset benchmark (BENCH_memory_reset.json) =="
cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_memory_reset
"$BUILD_DIR"/bench/bench_memory_reset --json "$BUILD_DIR"/BENCH_memory_reset.json

echo "== tier-1: static fault-space pruning benchmark (BENCH_static_prune.json) =="
cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_static_prune
"$BUILD_DIR"/bench/bench_static_prune --json "$BUILD_DIR"/BENCH_static_prune.json

echo "tier-1: OK"
